#include "kripke/structure.hpp"

#include <algorithm>
#include <queue>
#include <utility>

#include "support/error.hpp"

namespace ictl::kripke {

bool Structure::is_total() const noexcept {
  for (const auto& out : succ_)
    if (out.empty()) return false;
  return true;
}

std::vector<PropId> Structure::used_props() const {
  std::vector<bool> used(registry_->size(), false);
  for (const auto& lab : labels_)
    lab.for_each([&](std::size_t p) { used[p] = true; });
  std::vector<PropId> out;
  for (PropId p = 0; p < used.size(); ++p)
    if (used[p]) out.push_back(p);
  return out;
}

StructureBuilder::StructureBuilder(PropRegistryPtr registry)
    : registry_(std::move(registry)) {
  support::require<ModelError>(registry_ != nullptr,
                               "StructureBuilder: registry must not be null");
}

StateId StructureBuilder::add_state(std::span<const PropId> props) {
  const StateId id = static_cast<StateId>(states_.size());
  PendingState st;
  st.props.assign(props.begin(), props.end());
  states_.push_back(std::move(st));
  return id;
}

StateId StructureBuilder::add_state(std::initializer_list<PropId> props) {
  return add_state(std::span<const PropId>(props.begin(), props.size()));
}

void StructureBuilder::add_transition(StateId from, StateId to) {
  support::require<ModelError>(from < states_.size() && to < states_.size(),
                               "add_transition: unknown state id");
  transitions_.emplace_back(from, to);
}

void StructureBuilder::set_initial(StateId s) {
  support::require<ModelError>(s < states_.size(), "set_initial: unknown state id");
  initial_ = s;
}

void StructureBuilder::set_name(StateId s, std::string name) {
  support::require<ModelError>(s < states_.size(), "set_name: unknown state id");
  states_[s].name = std::move(name);
}

void StructureBuilder::set_index_set(std::vector<std::uint32_t> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  indices_ = std::move(indices);
}

void StructureBuilder::add_prop(StateId s, PropId p) {
  support::require<ModelError>(s < states_.size(), "add_prop: unknown state id");
  states_[s].props.push_back(p);
}

Structure StructureBuilder::build(BuildOptions options) && {
  support::require<ModelError>(initial_ != kNoState,
                               "build: no initial state was set");

  Structure m;
  m.registry_ = std::move(registry_);
  m.initial_ = initial_;
  m.indices_ = std::move(indices_);

  const std::size_t n = states_.size();
  const std::size_t width = m.registry_->size();
  m.labels_.reserve(n);
  m.names_.reserve(n);
  for (auto& st : states_) {
    support::DynamicBitset lab(width);
    for (PropId p : st.props) {
      support::require<ModelError>(p < width, "build: unknown proposition id");
      lab.set(p);
    }
    m.labels_.push_back(std::move(lab));
    m.names_.push_back(std::move(st.name));
  }

  m.succ_.assign(n, {});
  m.pred_.assign(n, {});
  std::sort(transitions_.begin(), transitions_.end());
  transitions_.erase(std::unique(transitions_.begin(), transitions_.end()),
                     transitions_.end());
  for (auto [from, to] : transitions_) {
    m.succ_[from].push_back(to);
    m.pred_[to].push_back(from);
  }
  m.num_transitions_ = transitions_.size();

  if (options.require_total) {
    for (StateId s = 0; s < n; ++s)
      support::require<ModelError>(
          !m.succ_[s].empty(),
          "build: transition relation is not total (state " + std::to_string(s) +
              (m.names_[s].empty() ? "" : " '" + m.names_[s] + "'") +
              " has no successor); the paper requires R to be total");
  }
  return m;
}

Structure reduce_to_index(const Structure& m, std::uint32_t i) {
  const PropRegistryPtr& reg = m.registry();
  StructureBuilder b(reg);

  // Pre-register the index-erased placeholders so label widths include them.
  std::vector<std::pair<PropId, PropId>> rename;  // (indexed prop of i, placeholder)
  for (const std::string& base : reg->indexed_bases()) {
    if (auto src = reg->find_indexed(base, i)) {
      const PropId dst = reg->indexed_base(base);
      rename.emplace_back(*src, dst);
    }
  }

  for (StateId s = 0; s < m.num_states(); ++s) {
    std::vector<PropId> props;
    m.label(s).for_each([&](std::size_t p) {
      const auto pid = static_cast<PropId>(p);
      switch (reg->kind(pid)) {
        case PropKind::kPlain:
        case PropKind::kTheta:
          props.push_back(pid);
          break;
        case PropKind::kIndexed:
          break;  // handled through `rename`
        case PropKind::kIndexedBase:
          props.push_back(pid);  // already erased (reducing a reduction)
          break;
      }
    });
    for (auto [src, dst] : rename)
      if (m.has_prop(s, src)) props.push_back(dst);
    const StateId ns = b.add_state(props);
    ICTL_ASSERT(ns == s);
    if (!m.state_name(s).empty()) b.set_name(ns, m.state_name(s));
  }
  for (StateId s = 0; s < m.num_states(); ++s)
    for (StateId t : m.successors(s)) b.add_transition(s, t);
  b.set_initial(m.initial());
  return std::move(b).build({.require_total = m.is_total()});
}

Structure restrict_to_reachable(const Structure& m, std::vector<StateId>* old_to_new) {
  std::vector<StateId> map(m.num_states(), kNoState);
  std::vector<StateId> order;
  std::queue<StateId> frontier;
  frontier.push(m.initial());
  map[m.initial()] = 0;
  order.push_back(m.initial());
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop();
    for (StateId t : m.successors(s)) {
      if (map[t] == kNoState) {
        map[t] = static_cast<StateId>(order.size());
        order.push_back(t);
        frontier.push(t);
      }
    }
  }

  StructureBuilder b(m.registry());
  for (StateId old : order) {
    std::vector<PropId> props;
    m.label(old).for_each([&](std::size_t p) { props.push_back(static_cast<PropId>(p)); });
    const StateId ns = b.add_state(props);
    if (!m.state_name(old).empty()) b.set_name(ns, m.state_name(old));
  }
  for (StateId old : order)
    for (StateId t : m.successors(old)) b.add_transition(map[old], map[t]);
  b.set_initial(0);
  std::vector<std::uint32_t> idx(m.index_set().begin(), m.index_set().end());
  b.set_index_set(std::move(idx));
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return std::move(b).build();
}

Structure disjoint_union(const Structure& a, const Structure& b) {
  support::require<ModelError>(a.registry() == b.registry(),
                               "disjoint_union: structures must share a registry");
  StructureBuilder builder(a.registry());
  auto copy_states = [&](const Structure& m) {
    for (StateId s = 0; s < m.num_states(); ++s) {
      std::vector<PropId> props;
      m.label(s).for_each(
          [&](std::size_t p) { props.push_back(static_cast<PropId>(p)); });
      const StateId ns = builder.add_state(props);
      if (!m.state_name(s).empty()) builder.set_name(ns, m.state_name(s));
    }
  };
  copy_states(a);
  copy_states(b);
  const auto offset = static_cast<StateId>(a.num_states());
  for (StateId s = 0; s < a.num_states(); ++s)
    for (StateId t : a.successors(s)) builder.add_transition(s, t);
  for (StateId s = 0; s < b.num_states(); ++s)
    for (StateId t : b.successors(s)) builder.add_transition(offset + s, offset + t);
  builder.set_initial(a.initial());
  return std::move(builder).build();
}

Structure materialize_theta(const Structure& m, std::string_view base) {
  const PropRegistryPtr& reg = m.registry();
  const PropId theta = reg->theta(base);
  const std::vector<PropId> members = reg->indexed_with_base(base);

  StructureBuilder b(reg);
  for (StateId s = 0; s < m.num_states(); ++s) {
    std::vector<PropId> props;
    m.label(s).for_each([&](std::size_t p) { props.push_back(static_cast<PropId>(p)); });
    std::size_t holders = 0;
    for (PropId p : members) holders += m.has_prop(s, p) ? 1 : 0;
    if (holders == 1) props.push_back(theta);
    const StateId ns = b.add_state(props);
    if (!m.state_name(s).empty()) b.set_name(ns, m.state_name(s));
  }
  for (StateId s = 0; s < m.num_states(); ++s)
    for (StateId t : m.successors(s)) b.add_transition(s, t);
  b.set_initial(m.initial());
  std::vector<std::uint32_t> idx(m.index_set().begin(), m.index_set().end());
  b.set_index_set(std::move(idx));
  return std::move(b).build({.require_total = m.is_total()});
}

}  // namespace ictl::kripke
