#include "kripke/structure.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "obs/obs.hpp"
#include "support/error.hpp"

namespace ictl::kripke {

bool Structure::is_total() const noexcept {
  for (std::size_t s = 0; s + 1 < succ_offsets_.size(); ++s)
    if (succ_offsets_[s] == succ_offsets_[s + 1]) return false;
  return true;
}

std::vector<PropId> Structure::used_props() const {
  std::vector<PropId> out;
  for (PropId p = 0; p < columns_.size(); ++p)
    if (columns_[p].any()) out.push_back(p);
  return out;
}

void Structure::pre_image(const support::DynamicBitset& set,
                          support::DynamicBitset& out) const {
  ICTL_ASSERT(set.size() == num_states());
  ICTL_ASSERT(out.size() == num_states());
  ICTL_ASSERT(&set != &out);
  // Counter only — this is the explicit engine's innermost kernel, called
  // once per EX; timing lives in the evaluator's per-opcode spans.
  ICTL_COUNT("kripke", "pre_images");
  out.reset_all();
  set.for_each([&](std::size_t t) {
    const std::uint32_t begin = pred_offsets_[t];
    const std::uint32_t end = pred_offsets_[t + 1];
    for (std::uint32_t i = begin; i != end; ++i) out.set(pred_flat_[i]);
  });
}

void Structure::post_image(const support::DynamicBitset& set,
                           support::DynamicBitset& out) const {
  ICTL_ASSERT(set.size() == num_states());
  ICTL_ASSERT(out.size() == num_states());
  ICTL_ASSERT(&set != &out);
  ICTL_COUNT("kripke", "post_images");
  out.reset_all();
  set.for_each([&](std::size_t s) {
    const std::uint32_t begin = succ_offsets_[s];
    const std::uint32_t end = succ_offsets_[s + 1];
    for (std::uint32_t i = begin; i != end; ++i) out.set(succ_flat_[i]);
  });
}

StructureBuilder::StructureBuilder(PropRegistryPtr registry)
    : registry_(std::move(registry)) {
  support::require<ModelError>(registry_ != nullptr,
                               "StructureBuilder: registry must not be null");
}

StateId StructureBuilder::add_state(std::span<const PropId> props) {
  const StateId id = static_cast<StateId>(states_.size());
  PendingState st;
  st.props.assign(props.begin(), props.end());
  states_.push_back(std::move(st));
  return id;
}

StateId StructureBuilder::add_state(std::initializer_list<PropId> props) {
  return add_state(std::span<const PropId>(props.begin(), props.size()));
}

StateId StructureBuilder::add_state(std::vector<PropId>&& props) {
  const StateId id = static_cast<StateId>(states_.size());
  PendingState st;
  st.props = std::move(props);
  states_.push_back(std::move(st));
  return id;
}

void StructureBuilder::reserve(std::size_t states, std::size_t transitions) {
  states_.reserve(states);
  transitions_.reserve(transitions);
}

void StructureBuilder::add_transition(StateId from, StateId to) {
  support::require<ModelError>(from < states_.size() && to < states_.size(),
                               "add_transition: unknown state id");
  transitions_.emplace_back(from, to);
}

void StructureBuilder::set_initial(StateId s) {
  support::require<ModelError>(s < states_.size(), "set_initial: unknown state id");
  initial_ = s;
}

void StructureBuilder::set_name(StateId s, std::string name) {
  support::require<ModelError>(s < states_.size(), "set_name: unknown state id");
  states_[s].name = std::move(name);
}

void StructureBuilder::set_index_set(std::vector<std::uint32_t> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  indices_ = std::move(indices);
}

void StructureBuilder::add_prop(StateId s, PropId p) {
  support::require<ModelError>(s < states_.size(), "add_prop: unknown state id");
  states_[s].props.push_back(p);
}

Structure StructureBuilder::build(BuildOptions options) && {
  support::require<ModelError>(initial_ != kNoState,
                               "build: no initial state was set");

  Structure m;
  m.registry_ = std::move(registry_);
  m.initial_ = initial_;
  m.indices_ = std::move(indices_);

  const std::size_t n = states_.size();
  const std::size_t width = m.registry_->size();
  m.labels_.reserve(n);
  m.names_.reserve(n);
  m.columns_.assign(width, support::DynamicBitset(n));
  m.empty_column_ = support::DynamicBitset(n);
  for (std::size_t s = 0; s < n; ++s) {
    auto& st = states_[s];
    support::DynamicBitset lab(width);
    for (PropId p : st.props) {
      support::require<ModelError>(p < width, "build: unknown proposition id");
      lab.set(p);
      m.columns_[p].set(s);
    }
    m.labels_.push_back(std::move(lab));
    m.names_.push_back(std::move(st.name));
  }

  // CSR assembly by counting sort — no global sort, no per-state vectors.
  // Successor rows are bucketed by source, sorted and deduplicated in place;
  // the predecessor CSR is then filled from the deduplicated successor rows
  // in ascending source order, which leaves its rows sorted for free.
  // Offsets are 32-bit; fail loudly rather than wrap if a construction ever
  // exceeds them (the r = 24 ring cap is past this line in theory, but such
  // a build is out of memory reach long before).
  support::require<ModelError>(
      transitions_.size() <= std::numeric_limits<std::uint32_t>::max(),
      "build: more than 2^32 transitions cannot be indexed by the CSR offsets");
  m.succ_offsets_.assign(n + 1, 0);
  for (const auto& [from, to] : transitions_) {
    static_cast<void>(to);
    ++m.succ_offsets_[from + 1];
  }
  for (std::size_t s = 0; s < n; ++s) m.succ_offsets_[s + 1] += m.succ_offsets_[s];
  m.succ_flat_.resize(transitions_.size());
  {
    std::vector<std::uint32_t> cursor(m.succ_offsets_.begin(),
                                      m.succ_offsets_.end() - 1);
    for (const auto& [from, to] : transitions_) m.succ_flat_[cursor[from]++] = to;
  }
  // Sort + dedup each row, compacting the flat array left-to-right (the
  // write cursor never overtakes the read cursor, so this is in place).
  std::uint32_t write = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const std::uint32_t begin = m.succ_offsets_[s];
    const std::uint32_t end = m.succ_offsets_[s + 1];
    std::sort(m.succ_flat_.begin() + begin, m.succ_flat_.begin() + end);
    m.succ_offsets_[s] = write;
    for (std::uint32_t i = begin; i != end; ++i) {
      if (i != begin && m.succ_flat_[i] == m.succ_flat_[i - 1]) continue;
      m.succ_flat_[write++] = m.succ_flat_[i];
    }
  }
  m.succ_offsets_[n] = write;
  m.succ_flat_.resize(write);
  m.succ_flat_.shrink_to_fit();
  m.num_transitions_ = write;

  m.pred_offsets_.assign(n + 1, 0);
  for (const StateId to : m.succ_flat_) ++m.pred_offsets_[to + 1];
  for (std::size_t s = 0; s < n; ++s) m.pred_offsets_[s + 1] += m.pred_offsets_[s];
  m.pred_flat_.resize(write);
  {
    std::vector<std::uint32_t> cursor(m.pred_offsets_.begin(),
                                      m.pred_offsets_.end() - 1);
    for (std::size_t s = 0; s < n; ++s) {
      const std::uint32_t begin = m.succ_offsets_[s];
      const std::uint32_t end = m.succ_offsets_[s + 1];
      for (std::uint32_t i = begin; i != end; ++i)
        m.pred_flat_[cursor[m.succ_flat_[i]]++] = static_cast<StateId>(s);
    }
  }

  if (options.require_total) {
    for (StateId s = 0; s < n; ++s)
      support::require<ModelError>(
          m.succ_offsets_[s] != m.succ_offsets_[s + 1],
          "build: transition relation is not total (state " + std::to_string(s) +
              (m.names_[s].empty() ? "" : " '" + m.names_[s] + "'") +
              " has no successor); the paper requires R to be total");
  }
  return m;
}

Structure reduce_to_index(const Structure& m, std::uint32_t i) {
  const PropRegistryPtr& reg = m.registry();
  StructureBuilder b(reg);

  // Pre-register the index-erased placeholders so label widths include them.
  std::vector<std::pair<PropId, PropId>> rename;  // (indexed prop of i, placeholder)
  for (const std::string& base : reg->indexed_bases()) {
    if (auto src = reg->find_indexed(base, i)) {
      const PropId dst = reg->indexed_base(base);
      rename.emplace_back(*src, dst);
    }
  }

  for (StateId s = 0; s < m.num_states(); ++s) {
    std::vector<PropId> props;
    m.label(s).for_each([&](std::size_t p) {
      const auto pid = static_cast<PropId>(p);
      switch (reg->kind(pid)) {
        case PropKind::kPlain:
        case PropKind::kTheta:
          props.push_back(pid);
          break;
        case PropKind::kIndexed:
          break;  // handled through `rename`
        case PropKind::kIndexedBase:
          props.push_back(pid);  // already erased (reducing a reduction)
          break;
      }
    });
    for (auto [src, dst] : rename)
      if (m.has_prop(s, src)) props.push_back(dst);
    const StateId ns = b.add_state(props);
    ICTL_ASSERT(ns == s);
    if (!m.state_name(s).empty()) b.set_name(ns, m.state_name(s));
  }
  for (StateId s = 0; s < m.num_states(); ++s)
    for (StateId t : m.successors(s)) b.add_transition(s, t);
  b.set_initial(m.initial());
  // Rebuilding through the builder normalizes label widths to the current
  // registry size, so the reduction's labels are comparable with reductions
  // of structures built at a different registry size.
  return std::move(b).build({.require_total = m.is_total()});
}

Structure restrict_to_reachable(const Structure& m, std::vector<StateId>* old_to_new) {
  std::vector<StateId> map(m.num_states(), kNoState);
  std::vector<StateId> order;
  std::queue<StateId> frontier;
  frontier.push(m.initial());
  map[m.initial()] = 0;
  order.push_back(m.initial());
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop();
    for (StateId t : m.successors(s)) {
      if (map[t] == kNoState) {
        map[t] = static_cast<StateId>(order.size());
        order.push_back(t);
        frontier.push(t);
      }
    }
  }

  StructureBuilder b(m.registry());
  for (StateId old : order) {
    std::vector<PropId> props;
    m.label(old).for_each([&](std::size_t p) { props.push_back(static_cast<PropId>(p)); });
    const StateId ns = b.add_state(props);
    if (!m.state_name(old).empty()) b.set_name(ns, m.state_name(old));
  }
  for (StateId old : order)
    for (StateId t : m.successors(old)) b.add_transition(map[old], map[t]);
  b.set_initial(0);
  std::vector<std::uint32_t> idx(m.index_set().begin(), m.index_set().end());
  b.set_index_set(std::move(idx));
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return std::move(b).build();
}

Structure disjoint_union(const Structure& a, const Structure& b) {
  support::require<ModelError>(a.registry() == b.registry(),
                               "disjoint_union: structures must share a registry");
  // `a` and `b` may have been built at different registry sizes (labels of
  // different widths).  Copying labels as prop-id lists and rebuilding
  // normalizes every label to the current registry size, so the equivalence
  // algorithms downstream only ever compare equal-width bitsets.
  StructureBuilder builder(a.registry());
  auto copy_states = [&](const Structure& m) {
    for (StateId s = 0; s < m.num_states(); ++s) {
      std::vector<PropId> props;
      m.label(s).for_each(
          [&](std::size_t p) { props.push_back(static_cast<PropId>(p)); });
      const StateId ns = builder.add_state(props);
      if (!m.state_name(s).empty()) builder.set_name(ns, m.state_name(s));
    }
  };
  copy_states(a);
  copy_states(b);
  const auto offset = static_cast<StateId>(a.num_states());
  for (StateId s = 0; s < a.num_states(); ++s)
    for (StateId t : a.successors(s)) builder.add_transition(s, t);
  for (StateId s = 0; s < b.num_states(); ++s)
    for (StateId t : b.successors(s)) builder.add_transition(offset + s, offset + t);
  builder.set_initial(a.initial());
  return std::move(builder).build();
}

Structure materialize_theta(const Structure& m, std::string_view base) {
  const PropRegistryPtr& reg = m.registry();
  const PropId theta = reg->theta(base);
  const std::vector<PropId> members = reg->indexed_with_base(base);

  StructureBuilder b(reg);
  for (StateId s = 0; s < m.num_states(); ++s) {
    std::vector<PropId> props;
    m.label(s).for_each([&](std::size_t p) { props.push_back(static_cast<PropId>(p)); });
    std::size_t holders = 0;
    for (PropId p : members) holders += m.has_prop(s, p) ? 1 : 0;
    if (holders == 1) props.push_back(theta);
    const StateId ns = b.add_state(props);
    if (!m.state_name(s).empty()) b.set_name(ns, m.state_name(s));
  }
  for (StateId s = 0; s < m.num_states(); ++s)
    for (StateId t : m.successors(s)) b.add_transition(s, t);
  b.set_initial(m.initial());
  std::vector<std::uint32_t> idx(m.index_set().begin(), m.index_set().end());
  b.set_index_set(std::move(idx));
  // Like reduce_to_index, the rebuild normalizes label widths to the
  // current registry size (theta itself may be newly interned here).
  return std::move(b).build({.require_total = m.is_total()});
}

}  // namespace ictl::kripke
