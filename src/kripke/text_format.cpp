#include "kripke/text_format.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace ictl::kripke {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw ModelError("text format, line " + std::to_string(line) + ": " + message);
}

/// Parses a proposition token: `p`, `p[3]`, or `one(p)`.
PropId parse_prop(PropRegistry& registry, const std::string& token,
                  std::size_t line) {
  if (token.rfind("one(", 0) == 0 && token.back() == ')') {
    const std::string base = token.substr(4, token.size() - 5);
    if (base.empty()) fail(line, "empty theta proposition: " + token);
    return registry.theta(base);
  }
  const auto bracket = token.find('[');
  if (bracket != std::string::npos) {
    if (token.back() != ']') fail(line, "missing ']' in " + token);
    const std::string base = token.substr(0, bracket);
    const std::string index_text =
        token.substr(bracket + 1, token.size() - bracket - 2);
    if (base.empty() || index_text.empty())
      fail(line, "malformed indexed proposition: " + token);
    if (index_text == ".") return registry.indexed_base(base);
    try {
      const unsigned long value = std::stoul(index_text);
      return registry.indexed(base, static_cast<std::uint32_t>(value));
    } catch (const std::exception&) {
      fail(line, "bad index in " + token);
    }
  }
  return registry.plain(token);
}

}  // namespace

Structure read_structure(std::istream& in, PropRegistryPtr registry) {
  support::require<ModelError>(registry != nullptr, "read_structure: null registry");
  struct PendingState {
    std::string name;
    std::vector<PropId> props;
  };
  std::vector<PendingState> states;
  std::vector<std::pair<StateId, StateId>> edges;
  std::vector<std::uint32_t> indices;
  std::optional<StateId> initial;

  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    std::istringstream line(raw);
    std::string keyword;
    if (!(line >> keyword) || keyword[0] == '#') continue;

    if (keyword == "state") {
      std::size_t id = 0;
      if (!(line >> id)) fail(line_number, "expected state id");
      if (id != states.size())
        fail(line_number, "state ids must be dense and in order (expected " +
                              std::to_string(states.size()) + ")");
      PendingState st;
      line >> st.name;  // optional
      states.push_back(std::move(st));
    } else if (keyword == "label") {
      std::size_t id = 0;
      if (!(line >> id) || id >= states.size())
        fail(line_number, "label: unknown state id");
      std::string token;
      while (line >> token)
        states[id].props.push_back(parse_prop(*registry, token, line_number));
    } else if (keyword == "edge") {
      std::size_t from = 0, to = 0;
      if (!(line >> from >> to) || from >= states.size() || to >= states.size())
        fail(line_number, "edge: unknown state id");
      edges.emplace_back(static_cast<StateId>(from), static_cast<StateId>(to));
    } else if (keyword == "init") {
      std::size_t id = 0;
      if (!(line >> id) || id >= states.size())
        fail(line_number, "init: unknown state id");
      initial = static_cast<StateId>(id);
    } else if (keyword == "indices") {
      std::uint32_t value = 0;
      while (line >> value) indices.push_back(value);
    } else {
      fail(line_number, "unknown keyword '" + keyword + "'");
    }
  }
  if (!initial.has_value()) throw ModelError("text format: missing 'init' line");

  StructureBuilder builder(std::move(registry));
  for (const auto& st : states) {
    const StateId id = builder.add_state(st.props);
    if (!st.name.empty()) builder.set_name(id, st.name);
  }
  for (const auto& [from, to] : edges) builder.add_transition(from, to);
  builder.set_initial(*initial);
  builder.set_index_set(std::move(indices));
  return std::move(builder).build();
}

Structure parse_structure(const std::string& text, PropRegistryPtr registry) {
  std::istringstream in(text);
  return read_structure(in, std::move(registry));
}

void write_structure(std::ostream& out, const Structure& m) {
  const PropRegistry& registry = *m.registry();
  for (StateId s = 0; s < m.num_states(); ++s) {
    out << "state " << s;
    if (!m.state_name(s).empty()) out << " " << m.state_name(s);
    out << "\n";
    bool any = false;
    std::ostringstream label;
    m.label(s).for_each([&](std::size_t p) {
      label << " " << registry.display(static_cast<PropId>(p));
      any = true;
    });
    if (any) out << "label " << s << label.str() << "\n";
  }
  for (StateId s = 0; s < m.num_states(); ++s)
    for (const StateId t : m.successors(s)) out << "edge " << s << " " << t << "\n";
  out << "init " << m.initial() << "\n";
  if (!m.index_set().empty()) {
    out << "indices";
    for (const std::uint32_t i : m.index_set()) out << " " << i;
    out << "\n";
  }
}

std::string to_text(const Structure& m) {
  std::ostringstream out;
  write_structure(out, m);
  return out.str();
}

}  // namespace ictl::kripke
