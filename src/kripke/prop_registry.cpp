#include "kripke/prop_registry.hpp"

#include "support/error.hpp"

namespace ictl::kripke {
namespace {

std::string key_plain(std::string_view name) { return "p:" + std::string(name); }
std::string key_indexed(std::string_view base, std::uint32_t index) {
  return "i:" + std::string(base) + "#" + std::to_string(index);
}
std::string key_theta(std::string_view base) { return "t:" + std::string(base); }
std::string key_base(std::string_view base) { return "b:" + std::string(base); }

}  // namespace

PropId PropRegistry::add(Entry entry, const std::string& key) {
  if (auto it = by_key_.find(key); it != by_key_.end()) return it->second;
  const PropId id = static_cast<PropId>(props_.size());
  props_.push_back(std::move(entry));
  by_key_.emplace(key, id);
  return id;
}

PropId PropRegistry::plain(std::string_view name) {
  return add({PropKind::kPlain, std::string(name), 0}, key_plain(name));
}

PropId PropRegistry::indexed(std::string_view base, std::uint32_t index) {
  return add({PropKind::kIndexed, std::string(base), index}, key_indexed(base, index));
}

PropId PropRegistry::theta(std::string_view base) {
  return add({PropKind::kTheta, std::string(base), 0}, key_theta(base));
}

PropId PropRegistry::indexed_base(std::string_view base) {
  return add({PropKind::kIndexedBase, std::string(base), 0}, key_base(base));
}

std::optional<PropId> PropRegistry::find_plain(std::string_view name) const {
  if (auto it = by_key_.find(key_plain(name)); it != by_key_.end()) return it->second;
  return std::nullopt;
}

std::optional<PropId> PropRegistry::find_indexed(std::string_view base,
                                                 std::uint32_t index) const {
  if (auto it = by_key_.find(key_indexed(base, index)); it != by_key_.end())
    return it->second;
  return std::nullopt;
}

std::optional<PropId> PropRegistry::find_theta(std::string_view base) const {
  if (auto it = by_key_.find(key_theta(base)); it != by_key_.end()) return it->second;
  return std::nullopt;
}

std::optional<PropId> PropRegistry::find_indexed_base(std::string_view base) const {
  if (auto it = by_key_.find(key_base(base)); it != by_key_.end()) return it->second;
  return std::nullopt;
}

PropKind PropRegistry::kind(PropId id) const {
  ICTL_ASSERT(id < props_.size());
  return props_[id].kind;
}

const std::string& PropRegistry::base_name(PropId id) const {
  ICTL_ASSERT(id < props_.size());
  return props_[id].base;
}

std::uint32_t PropRegistry::index_of(PropId id) const {
  ICTL_ASSERT(id < props_.size());
  ICTL_ASSERT(props_[id].kind == PropKind::kIndexed);
  return props_[id].index;
}

std::string PropRegistry::display(PropId id) const {
  ICTL_ASSERT(id < props_.size());
  const Entry& e = props_[id];
  switch (e.kind) {
    case PropKind::kPlain:
      return e.base;
    case PropKind::kIndexed:
      return e.base + "[" + std::to_string(e.index) + "]";
    case PropKind::kTheta:
      return "one(" + e.base + ")";
    case PropKind::kIndexedBase:
      return e.base + "[.]";
  }
  return "?";
}

std::vector<PropId> PropRegistry::indexed_with_base(std::string_view base) const {
  std::vector<PropId> out;
  for (PropId id = 0; id < props_.size(); ++id)
    if (props_[id].kind == PropKind::kIndexed && props_[id].base == base)
      out.push_back(id);
  return out;
}

std::vector<std::string> PropRegistry::indexed_bases() const {
  std::vector<std::string> out;
  for (const Entry& e : props_)
    if (e.kind == PropKind::kIndexed) {
      bool seen = false;
      for (const auto& b : out) seen = seen || (b == e.base);
      if (!seen) out.push_back(e.base);
    }
  return out;
}

PropRegistryPtr make_registry() { return std::make_shared<PropRegistry>(); }

}  // namespace ictl::kripke
