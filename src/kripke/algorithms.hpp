// Graph algorithms over Kripke structures used throughout the library:
// forward/backward reachability and strongly connected components.
#pragma once

#include <vector>

#include "kripke/structure.hpp"
#include "support/bitset.hpp"

namespace ictl::kripke {

/// States reachable from `from` (inclusive) along R.
[[nodiscard]] support::DynamicBitset forward_reachable(const Structure& m, StateId from);

/// States reachable from any state in `from` (inclusive).
[[nodiscard]] support::DynamicBitset forward_reachable(const Structure& m,
                                                       const support::DynamicBitset& from);

/// States that can reach some state of `targets` (inclusive), optionally
/// restricted to travel only through states in `within` (targets themselves
/// need not be in `within`).
[[nodiscard]] support::DynamicBitset backward_reachable(
    const Structure& m, const support::DynamicBitset& targets,
    const support::DynamicBitset* within = nullptr);

/// Strongly connected components in reverse topological order (Tarjan).
/// Component ids are dense; `component_of[s]` gives the id of s's SCC.
struct SccDecomposition {
  std::vector<std::vector<StateId>> components;  // reverse topological order
  std::vector<std::uint32_t> component_of;

  /// True when the component is a cycle-carrying SCC: more than one state, or
  /// a single state with a self-loop.
  [[nodiscard]] bool is_nontrivial(const Structure& m, std::uint32_t c) const;
};

[[nodiscard]] SccDecomposition strongly_connected_components(const Structure& m);

}  // namespace ictl::kripke
