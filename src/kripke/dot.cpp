#include "kripke/dot.hpp"

#include <ostream>
#include <sstream>

namespace ictl::kripke {

void write_dot(std::ostream& os, const Structure& m, const std::string& graph_name) {
  os << "digraph " << graph_name << " {\n";
  os << "  rankdir=LR;\n";
  for (StateId s = 0; s < m.num_states(); ++s) {
    os << "  s" << s << " [label=\"";
    if (!m.state_name(s).empty()) os << m.state_name(s) << "\\n";
    bool first = true;
    m.label(s).for_each([&](std::size_t p) {
      if (!first) os << ",";
      os << m.registry()->display(static_cast<PropId>(p));
      first = false;
    });
    os << "\"";
    if (s == m.initial()) os << ", shape=doublecircle";
    os << "];\n";
  }
  for (StateId s = 0; s < m.num_states(); ++s)
    for (StateId t : m.successors(s)) os << "  s" << s << " -> s" << t << ";\n";
  os << "}\n";
}

std::string to_dot(const Structure& m, const std::string& graph_name) {
  std::ostringstream os;
  write_dot(os, m, graph_name);
  return os.str();
}

}  // namespace ictl::kripke
