// Bridges the evaluation core's hot-path stats structs into the obs
// registry: the structs stay the cheap recorders the evaluator/compiler
// bump inline, and every checker façade's publish_stats() calls through
// here so the per-engine counters land under one key scheme
// ("<scope>/instructions", "<scope>/op_eu", ...) in the unified JSON
// export (obs::Registry::to_json).
#pragma once

#include <string_view>

#include "eval/program_compiler.hpp"
#include "eval/state_set_ops.hpp"

namespace ictl::obs {
class Registry;  // obs/obs.hpp
}

namespace ictl::eval {

/// Mirrors run-side counters (instructions, fixpoint iterations, per-opcode
/// counts and — when spans were enabled — per-opcode nanoseconds) into
/// `registry` under `scope`.
void publish_stats(const EvalStats& stats, obs::Registry& registry,
                   std::string_view scope);

/// Mirrors compile-side counters (programs compiled, cache/CSE hits).
void publish_stats(const ProgramCompiler::Stats& stats, obs::Registry& registry,
                   std::string_view scope);

}  // namespace ictl::eval
