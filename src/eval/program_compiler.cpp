#include "eval/program_compiler.hpp"

#include <utility>

#include "logic/printer.hpp"
#include "logic/rewrite.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"

namespace ictl::eval {

using logic::FormulaPtr;
using logic::Kind;

namespace {

/// Builds SSA-form code (every instruction's destination is its own index),
/// then finish() runs the linear-scan allocator that maps SSA values onto a
/// small physical register file.
class Emitter {
 public:
  Emitter(const std::vector<std::uint32_t>& index_set,
          ProgramCompiler::Stats& stats)
      : index_set_(index_set), stats_(stats) {
    code_.reserve(16);
  }

  Reg lower(const FormulaPtr& f) {
    if (const auto it = formula_memo_.find(f->id()); it != formula_memo_.end())
      return it->second;
    const Reg r = lower_uncached(f);
    formula_memo_.emplace(f->id(), r);
    return r;
  }

  std::shared_ptr<const FixpointProgram> finish(Reg root_value, FormulaPtr root);

 private:
  Reg lower_uncached(const FormulaPtr& f) {
    switch (f->kind()) {
      case Kind::kTrue:
        return emit(OpCode::kConstTrue, 0, 0);
      case Kind::kFalse:
        return emit(OpCode::kConstFalse, 0, 0);
      case Kind::kAtom:
      case Kind::kIndexedAtom:
      case Kind::kExactlyOne:
        return emit_leaf(f);
      case Kind::kNot:
        return emit(OpCode::kNot, lower(f->lhs()), 0);
      case Kind::kAnd:
        return emit(OpCode::kAnd, lower(f->lhs()), lower(f->rhs()));
      case Kind::kOr:
        return emit(OpCode::kOr, lower(f->lhs()), lower(f->rhs()));
      case Kind::kImplies: {
        // a -> b  =  !a | b
        const Reg na = emit(OpCode::kNot, lower(f->lhs()), 0);
        return emit(OpCode::kOr, na, lower(f->rhs()));
      }
      case Kind::kIff:
        return emit(OpCode::kIff, lower(f->lhs()), lower(f->rhs()));
      case Kind::kExistsPath:
      case Kind::kForallPath:
        return lower_path_quantified(f);
      case Kind::kForallIndex:
      case Kind::kExistsIndex:
        return lower_index_quantified(f);
      default:
        throw LogicError("ProgramCompiler: not a state formula: " +
                         logic::to_string(f));
    }
  }

  Reg lower_path_quantified(const FormulaPtr& f) {
    const bool exists = f->kind() == Kind::kExistsPath;
    const FormulaPtr& g = f->lhs();
    switch (g->kind()) {
      case Kind::kEventually: {  // EF f = E[true U f];  AF f = !EG !f
        const Reg target = lower(g->lhs());
        if (exists) return emit_eu(emit(OpCode::kConstTrue, 0, 0), target);
        return emit_not(emit_eg(emit_not(target)));
      }
      case Kind::kAlways: {  // EG f;  AG f = !E[true U !f]
        const Reg body = lower(g->lhs());
        if (exists) return emit_eg(body);
        return emit_not(emit_eu(emit(OpCode::kConstTrue, 0, 0), emit_not(body)));
      }
      case Kind::kUntil: {
        const Reg a = lower(g->lhs());
        const Reg b = lower(g->rhs());
        if (exists) return emit_eu(a, b);
        // A[a U b] = !( E[!b U (!a & !b)] | EG !b )
        const Reg na = emit_not(a);
        const Reg nb = emit_not(b);
        const Reg bad = emit(OpCode::kOr,
                             emit_eu(nb, emit(OpCode::kAnd, na, nb)),
                             emit_eg(nb));
        return emit_not(bad);
      }
      case Kind::kRelease: {
        const Reg a = lower(g->lhs());
        const Reg b = lower(g->rhs());
        if (exists)  // E[a R b] = EG b | E[b U (a & b)]
          return emit(OpCode::kOr, emit_eg(b),
                      emit_eu(b, emit(OpCode::kAnd, a, b)));
        // A[a R b] = !E[!a U !b]
        return emit_not(emit_eu(emit_not(a), emit_not(b)));
      }
      case Kind::kNext: {  // EX f;  AX f = !EX !f  (NEXTTIME experiment only:
        // is_ctl rejects X, so the checker façades never reach this — it
        // exists for direct per-opcode exercise of the kEX instruction.)
        const Reg body = lower(g->lhs());
        if (exists) return emit(OpCode::kEX, body, 0);
        return emit_not(emit(OpCode::kEX, emit_not(body), 0));
      }
      default:
        throw LogicError(
            "ProgramCompiler: path quantifier not applied to F/G/U/R (outside "
            "CTL): " +
            logic::to_string(f));
    }
  }

  Reg lower_index_quantified(const FormulaPtr& f) {
    support::require<LogicError>(
        !index_set_.empty(),
        "ProgramCompiler: empty index set but the formula quantifies over "
        "indices: " +
            logic::to_string(f));
    const bool forall = f->kind() == Kind::kForallIndex;
    Reg acc = 0;
    bool first = true;
    for (const std::uint32_t i : index_set_) {
      const FormulaPtr inst = logic::bind_index(f->lhs(), f->name(), i);
      const Reg r = lower(inst);
      acc = first ? r : emit(forall ? OpCode::kAnd : OpCode::kOr, acc, r);
      first = false;
    }
    return acc;
  }

  Reg emit_leaf(const FormulaPtr& f) {
    if (f->kind() == Kind::kIndexedAtom) {
      support::require<LogicError>(
          f->index_value().has_value(),
          "ProgramCompiler: indexed atom with unbound index variable '" +
              f->index_var() + "': " + logic::to_string(f));
    }
    std::uint32_t slot;
    if (const auto it = leaf_index_.find(f->id()); it != leaf_index_.end()) {
      slot = it->second;
    } else {
      slot = static_cast<std::uint32_t>(leaves_.size());
      leaves_.push_back(f);
      leaf_index_.emplace(f->id(), slot);
    }
    return emit(OpCode::kLeaf, 0, 0, slot);
  }

  Reg emit_not(Reg a) { return emit(OpCode::kNot, a, 0); }
  Reg emit_eu(Reg a, Reg b) { return emit(OpCode::kEU, a, b); }
  Reg emit_eg(Reg a) { return emit(OpCode::kEG, a, 0); }

  Reg emit(OpCode op, Reg a, Reg b, std::uint32_t leaf = 0) {
    // Canonicalize commutative operand order so value numbering sees
    // and(x, y) and and(y, x) as one instruction.
    if ((op == OpCode::kAnd || op == OpCode::kOr || op == OpCode::kIff) && a > b)
      std::swap(a, b);
    const std::uint64_t key = pack_key(op, a, b, leaf);
    if (const auto it = value_numbers_.find(key); it != value_numbers_.end()) {
      ++stats_.cse_hits;
      return it->second;
    }
    const Reg dst = static_cast<Reg>(code_.size());
    code_.push_back(Instruction{op, dst, a, b, leaf});
    value_numbers_.emplace(key, dst);
    return dst;
  }

  static std::uint64_t pack_key(OpCode op, Reg a, Reg b, std::uint32_t leaf) {
    // Operands fit 28 bits each (programs are bounded by formula size times
    // index-set size — nowhere near 2^28 instructions); kLeaf reuses the
    // operand field for the leaf slot.
    const std::uint64_t x = op == OpCode::kLeaf ? leaf : a;
    return (static_cast<std::uint64_t>(op) << 56) | (x << 28) |
           static_cast<std::uint64_t>(b);
  }

  const std::vector<std::uint32_t>& index_set_;
  ProgramCompiler::Stats& stats_;
  std::vector<Instruction> code_;  // SSA: instruction i defines value i
  std::vector<FormulaPtr> leaves_;
  std::unordered_map<std::uint64_t, Reg> formula_memo_;   // Formula::id -> value
  std::unordered_map<std::uint64_t, Reg> value_numbers_;  // packed op key -> value
  std::unordered_map<std::uint64_t, std::uint32_t> leaf_index_;
};

/// Which operand fields an opcode reads.
constexpr bool reads_a(OpCode op) {
  switch (op) {
    case OpCode::kConstTrue:
    case OpCode::kConstFalse:
    case OpCode::kLeaf:
      return false;
    default:
      return true;
  }
}
constexpr bool reads_b(OpCode op) {
  switch (op) {
    case OpCode::kAnd:
    case OpCode::kOr:
    case OpCode::kIff:
    case OpCode::kEU:
      return true;
    default:
      return false;
  }
}

std::shared_ptr<const FixpointProgram> Emitter::finish(Reg root_value,
                                                       FormulaPtr root) {
  const std::size_t n = code_.size();
  // Last instruction index reading each SSA value; the root result must
  // survive to the end.
  std::vector<std::uint32_t> last_use(n);
  for (std::size_t i = 0; i < n; ++i) {
    last_use[i] = static_cast<std::uint32_t>(i);
    const Instruction& in = code_[i];
    if (reads_a(in.op)) last_use[in.a] = static_cast<std::uint32_t>(i);
    if (reads_b(in.op)) last_use[in.b] = static_cast<std::uint32_t>(i);
  }
  last_use[root_value] = static_cast<std::uint32_t>(n);

  auto program = std::make_shared<FixpointProgram>();
  program->code.reserve(n);
  std::vector<Reg> phys(n);
  std::vector<Reg> free_regs;
  Reg high_water = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& in = code_[i];
    Instruction out = in;
    if (reads_a(in.op)) out.a = phys[in.a];
    if (reads_b(in.op)) out.b = phys[in.b];
    // Release operands dying here before allocating the destination, so a
    // value's last consumer can write its result into the freed slot (the
    // evaluator computes into a temporary before the register assignment,
    // making in-place destinations safe for every backend).
    if (reads_a(in.op) && last_use[in.a] == i) free_regs.push_back(phys[in.a]);
    if (reads_b(in.op) && in.b != in.a && last_use[in.b] == i)
      free_regs.push_back(phys[in.b]);
    if (free_regs.empty()) {
      out.dst = high_water++;
    } else {
      out.dst = free_regs.back();
      free_regs.pop_back();
    }
    phys[i] = out.dst;
    program->code.push_back(out);
  }

  program->leaves = std::move(leaves_);
  program->num_registers = high_water;
  program->result = phys[root_value];
  program->formula_id = root->id();
  program->root = std::move(root);
  return program;
}

}  // namespace

ProgramCompiler::ProgramCompiler(std::vector<std::uint32_t> index_set)
    : index_set_(std::move(index_set)) {}

std::shared_ptr<const FixpointProgram> ProgramCompiler::compile(
    const FormulaPtr& f) {
  support::require<LogicError>(f != nullptr, "ProgramCompiler: null formula");
  if (const auto it = cache_.find(f->id()); it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  // Below the cache hit: a memoized return is not a compilation.
  ICTL_PROFILE("eval", "compile");
  Emitter emitter(index_set_, stats_);
  const Reg root_value = emitter.lower(f);
  auto program = emitter.finish(root_value, f);
  ++stats_.programs_compiled;
  cache_.emplace(f->id(), program);
  return program;
}

}  // namespace ictl::eval
