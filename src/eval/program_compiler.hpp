// Compiles CTL state formulas (the logic::is_ctl fragment, plus EX for the
// NEXTTIME experiment) into FixpointProgram register code.
//
// One compile per formula DAG: programs are cached by the never-reused
// logic::Formula::id and shared by shared_ptr, so every engine evaluating
// the same formula runs the identical instruction sequence.  Two layers of
// common-subexpression elimination keep programs minimal:
//   * hash-consed subformulas lower once (memo on Formula::id — structural
//     equality IS pointer identity, so structurally equal subformulas
//     compile to one register), and
//   * instruction-level value numbering folds duplicates the expansion
//     dualities introduce (e.g. the two `!b` uses inside A[a U b], or the
//     shared `true` of nested EF).
// A linear-scan register allocator then reuses slots whose value is dead,
// so the register file stays near the formula's operand width rather than
// its instruction count — registers hold whole satisfying sets (bitsets or
// BDD roots), so dead-slot reuse is what keeps evaluation memory flat.
//
// Index quantifiers (/\i, \/i) expand over the compiler's index set into
// and/or chains of bind_index instances; `one P` and atoms stay leaves for
// the backend to resolve.  Compilation throws LogicError on non-state
// formulas, unbound index variables, and index quantifiers over an empty
// index set — the same conditions the recursive checkers rejected.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "eval/fixpoint_program.hpp"
#include "logic/formula.hpp"

namespace ictl::eval {

class ProgramCompiler {
 public:
  /// `index_set` is the structure's process-index universe, captured once:
  /// compiled programs bake its expansion in, exactly like the recursive
  /// checkers expanded quantifiers against their structure's index set.
  explicit ProgramCompiler(std::vector<std::uint32_t> index_set);

  /// Compiles `f` (cached by Formula::id) into an immutable shared program.
  [[nodiscard]] std::shared_ptr<const FixpointProgram> compile(
      const logic::FormulaPtr& f);

  struct Stats {
    std::size_t programs_compiled = 0;
    std::size_t cache_hits = 0;  ///< compile() calls answered from the cache
    std::size_t cse_hits = 0;    ///< instructions folded by value numbering
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] const std::vector<std::uint32_t>& index_set() const noexcept {
    return index_set_;
  }

 private:
  std::vector<std::uint32_t> index_set_;
  // Program cache keyed on hash-consed node identity; each cached program
  // retains its root formula, which keeps the DAG's cons-table entries
  // alive so structurally equal rebuilds still hit this cache.
  std::unordered_map<std::uint64_t, std::shared_ptr<const FixpointProgram>> cache_;
  Stats stats_;
};

}  // namespace ictl::eval
