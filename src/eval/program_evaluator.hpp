// The one evaluation core: a register-machine loop that runs a compiled
// FixpointProgram over any StateSetOps backend.  All three engines —
// explicit, symbolic, naive — execute the identical instruction sequence;
// only the set representation behind the registers differs.
//
// Register values are whole satisfying sets with value semantics (bitsets
// or BddRef roots, so symbolic registers stay GC/reorder-rooted for exactly
// as long as the allocator keeps the slot live).  Every instruction
// computes its result into a temporary before the destination assignment,
// which makes the allocator's in-place destinations (dst == operand slot)
// safe for every backend.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "eval/fixpoint_program.hpp"
#include "eval/state_set_ops.hpp"
#include "obs/obs.hpp"
#include "rt/budget.hpp"
#include "rt/failpoint.hpp"
#include "support/error.hpp"

namespace ictl::eval {

template <StateSetOps Ops>
class ProgramEvaluator {
 public:
  explicit ProgramEvaluator(Ops& ops) : ops_(ops) {}

  /// Runs `program` and returns the satisfying set of its root formula.
  [[nodiscard]] typename Ops::Set run(const FixpointProgram& program) {
    std::vector<typename Ops::Set> regs(program.num_registers);
    ++stats_.programs_run;
    if (program.num_registers > stats_.register_high_water)
      stats_.register_high_water = program.num_registers;
    // obs::enabled() is the constant false when the spine is compiled out,
    // so the timed branch below folds away entirely in obs-off builds.
    for (const Instruction& in : program.code) {
      // Between-instruction checkpoint: every register is a whole rooted
      // set here, so a budget trip unwinds without leaving partial state.
      // The fixpoint opcodes additionally checkpoint per iteration inside
      // the backend eu/eg loops.
      rt::checkpoint("eval/program");
      ICTL_FAILPOINT("eval/instruction");
      const auto op_index = static_cast<std::size_t>(in.op);
      ++stats_.op_count[op_index];
      if (obs::enabled()) {
        obs::SpanGuard span("eval", opcode_name(in.op));
        typename Ops::Set value = execute(in, program, regs);
        if (is_fixpoint(in.op))
          obs::span_arg("iterations", ops_.last_fixpoint_iterations());
        stats_.op_ns[op_index] += span.elapsed_ns();
        regs[in.dst] = std::move(value);
      } else {
        typename Ops::Set value = execute(in, program, regs);
        regs[in.dst] = std::move(value);
      }
    }
    stats_.instructions += program.code.size();
    return std::move(regs[program.result]);
  }

  [[nodiscard]] const EvalStats& stats() const noexcept { return stats_; }

 private:
  typename Ops::Set execute(const Instruction& in, const FixpointProgram& program,
                            std::vector<typename Ops::Set>& regs) {
    switch (in.op) {
      case OpCode::kConstTrue:
        return ops_.top();
      case OpCode::kConstFalse:
        return ops_.bottom();
      case OpCode::kLeaf:
        ++stats_.leaf_evals;
        return ops_.leaf(program.leaves[in.leaf]);
      case OpCode::kNot:
        return ops_.complement(regs[in.a]);
      case OpCode::kAnd:
        return ops_.conj(regs[in.a], regs[in.b]);
      case OpCode::kOr:
        return ops_.disj(regs[in.a], regs[in.b]);
      case OpCode::kIff:
        return ops_.iff(regs[in.a], regs[in.b]);
      case OpCode::kEX:
        return ops_.ex(regs[in.a]);
      case OpCode::kEU: {
        typename Ops::Set value = ops_.eu(regs[in.a], regs[in.b]);
        ++stats_.fixpoint_ops;
        stats_.fixpoint_iterations += ops_.last_fixpoint_iterations();
        return value;
      }
      case OpCode::kEG: {
        typename Ops::Set value = ops_.eg(regs[in.a]);
        ++stats_.fixpoint_ops;
        stats_.fixpoint_iterations += ops_.last_fixpoint_iterations();
        return value;
      }
    }
    throw LogicError("ProgramEvaluator: corrupt opcode");
  }

  Ops& ops_;
  EvalStats stats_;
};

}  // namespace ictl::eval
