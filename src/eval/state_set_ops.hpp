// The backend concept behind the one evaluation core: a StateSetOps models
// satisfying sets of one engine (explicit bitsets, BDD roots, or the naive
// reference) and supplies the primitive set operations the FixpointProgram
// instructions are defined over.
//
// Semantics contract: `top()` is the backend's universe and `complement`
// is taken relative to it.  The explicit engines use the whole state space;
// the symbolic engine uses the reachable set (its structures are compared
// against reachable-restricted explicit ones, so the engines still agree
// state-for-state — the same convention the recursive checkers followed).
// `eu`/`eg` are whole fixpoints, not single steps: the IR's loop headers
// delegate the iteration schedule to the backend so each engine keeps its
// native algorithm (frontier worklists, successor-counting elimination,
// symbolic frontier rounds) and its allocation discipline.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>

#include "eval/fixpoint_program.hpp"
#include "logic/formula.hpp"

namespace ictl::eval {

// clang-format off
template <typename O>
concept StateSetOps =
    requires(O ops, const typename O::Set& s, const logic::FormulaPtr& f) {
      typename O::Set;
      { ops.top() } -> std::same_as<typename O::Set>;
      { ops.bottom() } -> std::same_as<typename O::Set>;
      { ops.leaf(f) } -> std::same_as<typename O::Set>;
      { ops.complement(s) } -> std::same_as<typename O::Set>;
      { ops.conj(s, s) } -> std::same_as<typename O::Set>;
      { ops.disj(s, s) } -> std::same_as<typename O::Set>;
      { ops.iff(s, s) } -> std::same_as<typename O::Set>;
      { ops.ex(s) } -> std::same_as<typename O::Set>;
      { ops.eu(s, s) } -> std::same_as<typename O::Set>;
      { ops.eg(s) } -> std::same_as<typename O::Set>;
      // Iterations (worklist steps or fixpoint rounds — the backend's
      // natural unit) taken by the most recent eu/eg call, for stats.
      { ops.last_fixpoint_iterations() } -> std::convertible_to<std::uint64_t>;
    };
// clang-format on

/// Per-checker evaluation counters, accumulated across program runs by
/// ProgramEvaluator and surfaced by the checker façades.
struct EvalStats {
  std::uint64_t programs_run = 0;
  std::uint64_t instructions = 0;         ///< instructions executed
  std::uint64_t leaf_evals = 0;           ///< kLeaf instructions executed
  std::uint64_t fixpoint_ops = 0;         ///< kEU/kEG instructions executed
  std::uint64_t fixpoint_iterations = 0;  ///< backend iterations across them
  std::uint32_t register_high_water = 0;  ///< widest register file seen
  /// Executions per opcode, indexed by OpCode (always recorded).
  std::array<std::uint64_t, kNumOpCodes> op_count{};
  /// Nanoseconds per opcode, indexed by OpCode.  Recorded only while
  /// obs::enabled() — zero otherwise, since timing every instruction of a
  /// disabled run would tax the hot path for nothing.
  std::array<std::uint64_t, kNumOpCodes> op_ns{};
};

}  // namespace ictl::eval
