#include "eval/fixpoint_program.hpp"

#include "logic/printer.hpp"

namespace ictl::eval {

namespace {

void append_reg(std::string& out, Reg r) {
  out += 'r';
  out += std::to_string(r);
}

}  // namespace

const char* opcode_name(OpCode op) noexcept {
  switch (op) {
    case OpCode::kConstTrue:
      return "true";
    case OpCode::kConstFalse:
      return "false";
    case OpCode::kLeaf:
      return "leaf";
    case OpCode::kNot:
      return "not";
    case OpCode::kAnd:
      return "and";
    case OpCode::kOr:
      return "or";
    case OpCode::kIff:
      return "iff";
    case OpCode::kEX:
      return "ex";
    case OpCode::kEU:
      return "eu";
    case OpCode::kEG:
      return "eg";
  }
  return "?";
}

std::string FixpointProgram::disassemble() const {
  std::string out = "program: ";
  out += root != nullptr ? logic::to_string(root) : "<null>";
  out += '\n';
  if (!leaves.empty()) {
    out += "leaves:\n";
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      out += "  L";
      out += std::to_string(i);
      out += " = ";
      out += logic::to_string(leaves[i]);
      out += '\n';
    }
  }
  out += "registers: ";
  out += std::to_string(num_registers);
  out += '\n';
  for (const Instruction& in : code) {
    out += "  ";
    append_reg(out, in.dst);
    out += " = ";
    switch (in.op) {
      case OpCode::kConstTrue:
        out += "true";
        break;
      case OpCode::kConstFalse:
        out += "false";
        break;
      case OpCode::kLeaf:
        out += "leaf L";
        out += std::to_string(in.leaf);
        break;
      case OpCode::kNot:
        out += "not ";
        append_reg(out, in.a);
        break;
      case OpCode::kAnd:
        out += "and ";
        append_reg(out, in.a);
        out += ", ";
        append_reg(out, in.b);
        break;
      case OpCode::kOr:
        out += "or ";
        append_reg(out, in.a);
        out += ", ";
        append_reg(out, in.b);
        break;
      case OpCode::kIff:
        out += "iff ";
        append_reg(out, in.a);
        out += ", ";
        append_reg(out, in.b);
        break;
      case OpCode::kEX:
        out += "ex ";
        append_reg(out, in.a);
        break;
      case OpCode::kEU:
        out += "eu ";
        append_reg(out, in.a);
        out += ", ";
        append_reg(out, in.b);
        out += "  ; lfp Z . ";
        append_reg(out, in.b);
        out += " | (";
        append_reg(out, in.a);
        out += " & EX Z)";
        break;
      case OpCode::kEG:
        out += "eg ";
        append_reg(out, in.a);
        out += "  ; gfp Z . ";
        append_reg(out, in.a);
        out += " & EX Z";
        break;
    }
    out += '\n';
  }
  out += "  ret ";
  append_reg(out, result);
  out += '\n';
  return out;
}

}  // namespace ictl::eval
