#include "eval/publish.hpp"

#include <string>

#include "obs/obs.hpp"

namespace ictl::eval {

void publish_stats(const EvalStats& stats, obs::Registry& registry,
                   std::string_view scope) {
  registry.set(scope, "programs_run", stats.programs_run);
  registry.set(scope, "instructions", stats.instructions);
  registry.set(scope, "leaf_evals", stats.leaf_evals);
  registry.set(scope, "fixpoint_ops", stats.fixpoint_ops);
  registry.set(scope, "fixpoint_iterations", stats.fixpoint_iterations);
  registry.set(scope, "register_high_water", stats.register_high_water);
  for (std::size_t i = 0; i < kNumOpCodes; ++i) {
    const char* name = opcode_name(static_cast<OpCode>(i));
    if (stats.op_count[i] != 0)
      registry.set(scope, "op_" + std::string(name), stats.op_count[i]);
    if (stats.op_ns[i] != 0)
      registry.set(scope, "op_" + std::string(name) + "_ns", stats.op_ns[i]);
  }
}

void publish_stats(const ProgramCompiler::Stats& stats, obs::Registry& registry,
                   std::string_view scope) {
  registry.set(scope, "programs_compiled", stats.programs_compiled);
  registry.set(scope, "cache_hits", stats.cache_hits);
  registry.set(scope, "cse_hits", stats.cse_hits);
}

}  // namespace ictl::eval
