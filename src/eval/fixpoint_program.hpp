// The flat fixpoint-program IR: a CTL state formula compiled to a
// straight-line register program whose instructions are satisfying-set
// operations (ROADMAP item 5's compile-to-program stretch, in the spirit of
// nesfab's generated table-driven loops).
//
// One program is compiled per formula DAG and then evaluated by any engine
// that models the StateSetOps concept (state_set_ops.hpp): explicit bitsets
// over CSR, BDDs, or the naive reference.  Registers hold whole satisfying
// sets; EU/EG are single instructions — fixpoint loop headers whose
// iteration schedule is the backend's own (frontier worklists explicitly,
// frontier/gfp rounds symbolically) — so compiling changes *where* the
// recursion lives, never the per-engine fixpoint algorithm.
//
// Index quantifiers are expanded at compile time over the index set the
// compiler was built with, and theta (`one P`) stays a leaf: leaves carry
// the original formula node, which the backend's leaf() resolves against
// its own label representation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/formula.hpp"

namespace ictl::eval {

/// Physical register index into the evaluator's set file.
using Reg = std::uint32_t;

enum class OpCode : std::uint8_t {
  kConstTrue,   ///< dst = the whole universe (backend's top)
  kConstFalse,  ///< dst = the empty set
  kLeaf,        ///< dst = satisfying set of leaves[leaf]
  kNot,         ///< dst = complement of a (relative to the backend universe)
  kAnd,         ///< dst = a & b
  kOr,          ///< dst = a | b
  kIff,         ///< dst = (a & b) | (!a & !b)
  kEX,          ///< dst = EX a
  kEU,          ///< dst = lfp Z . b | (a & EX Z)   — fixpoint loop header
  kEG,          ///< dst = gfp Z . a & EX Z         — fixpoint loop header
};

/// Number of OpCode values — sizes per-opcode stat arrays (EvalStats).
inline constexpr std::size_t kNumOpCodes = 10;

/// Stable lowercase mnemonic ("true", "and", "eu", ...) — the label used by
/// disassembly, per-opcode evaluator spans, and bench counters alike.  The
/// pointer has static storage duration, as obs span names require.
[[nodiscard]] const char* opcode_name(OpCode op) noexcept;

/// True for the two fixpoint loop headers.
[[nodiscard]] constexpr bool is_fixpoint(OpCode op) noexcept {
  return op == OpCode::kEU || op == OpCode::kEG;
}

struct Instruction {
  OpCode op;
  Reg dst = 0;
  Reg a = 0;           ///< first operand register (unused for consts/leaf)
  Reg b = 0;           ///< second operand register (kAnd/kOr/kIff/kEU)
  std::uint32_t leaf = 0;  ///< kLeaf: index into FixpointProgram::leaves
};

/// A compiled formula: straight-line code over a small register file.
/// Programs are immutable once built and safe to share across evaluators
/// and threads — all mutable state lives in the evaluator's register file.
struct FixpointProgram {
  std::vector<Instruction> code;
  /// Leaf table: the original (hash-consed) leaf formula nodes, resolved by
  /// the backend at kLeaf instructions.  Distinct leaves appear once.
  std::vector<logic::FormulaPtr> leaves;
  /// Register-file size; the allocator reuses slots whose value is dead.
  std::uint32_t num_registers = 0;
  /// Register holding the satisfying set of the root formula on return.
  Reg result = 0;
  /// Identity of the compiled formula node (logic::Formula::id — never
  /// reused, so (structure fingerprint, formula_id) is a stable cache key).
  std::uint64_t formula_id = 0;
  /// The root formula, retained so disassembly can render the source and
  /// so the hash-cons table keeps the DAG alive for the program's lifetime.
  logic::FormulaPtr root;

  [[nodiscard]] std::size_t num_fixpoint_ops() const noexcept {
    std::size_t n = 0;
    for (const Instruction& in : code) n += is_fixpoint(in.op) ? 1 : 0;
    return n;
  }

  /// Deterministic textual rendering for golden tests: source line, leaf
  /// table, register count, then one line per instruction.  Fixpoint
  /// instructions carry their loop-header equation as a trailing comment.
  [[nodiscard]] std::string disassemble() const;
};

}  // namespace ictl::eval
