// A dynamically sized bitset used for state sets and proposition labels.
//
// std::vector<bool> lacks word-level operations and std::bitset is statically
// sized; model-checking fixpoints live on fast word-parallel AND/OR/ANDNOT,
// so we provide our own small implementation.
//
// Width contract: every binary operation — including operator== — requires
// operands of equal size() and asserts otherwise.  Bitsets of different
// widths arise from label bitsets built at different registry sizes; the one
// sanctioned way to compare those is same_bits(), which ignores trailing
// zero bits beyond the shorter width.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace ictl::support {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Constructs a bitset with `size` bits, all cleared.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + kWordBits - 1) / kWordBits, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] bool test(std::size_t i) const {
    ICTL_ASSERT(i < size_);
    return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
  }

  void set(std::size_t i) {
    ICTL_ASSERT(i < size_);
    words_[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
  }

  void reset(std::size_t i) {
    ICTL_ASSERT(i < size_);
    words_[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
  }

  void assign(std::size_t i, bool value) { value ? set(i) : reset(i); }

  /// Grows or shrinks to `new_size` bits.  New bits are cleared; on shrink,
  /// bits beyond the new size are dropped (a later grow sees them as 0).
  void resize(std::size_t new_size);

  /// Sets every bit.
  void set_all() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    trim();
  }

  /// Clears every bit.
  void reset_all() {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] bool any() const noexcept {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }

  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// True when every bit is set.
  [[nodiscard]] bool all() const noexcept { return count() == size_; }

  [[nodiscard]] std::size_t count() const noexcept;

  /// In-place bitwise operations; both operands must have equal size.
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);
  /// this := this & ~other
  DynamicBitset& and_not(const DynamicBitset& other);
  /// Flips every bit.
  void flip();

  [[nodiscard]] friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }

  /// Equality under the width contract: both operands must have equal size.
  /// Use same_bits() to compare bitsets of different widths.
  [[nodiscard]] bool operator==(const DynamicBitset& other) const {
    ICTL_ASSERT(size_ == other.size_);
    return words_ == other.words_;
  }

  /// Width-agnostic comparison: true when both bitsets have the same set of
  /// set-bit indices (trailing bits beyond the shorter width must be zero in
  /// the wider operand).
  [[nodiscard]] bool same_bits(const DynamicBitset& other) const noexcept;

  /// True when this is a subset of `other`.
  [[nodiscard]] bool is_subset_of(const DynamicBitset& other) const;

  /// True when this and `other` share at least one set bit.
  [[nodiscard]] bool intersects(const DynamicBitset& other) const;

  /// Index of the first set bit, or `size()` when none.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// Index of the first set bit strictly after `i`, or `size()` when none.
  [[nodiscard]] std::size_t find_next(std::size_t i) const noexcept;

  /// Invokes `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const auto bit = static_cast<std::size_t>(__builtin_ctzll(bits));
        fn(w * kWordBits + bit);
        bits &= bits - 1;
      }
    }
  }

  /// All set-bit indices in ascending order.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

  /// Read-only view of the backing 64-bit words; bits beyond size() are
  /// guaranteed zero (the trim invariant).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Mutable word view for word-parallel kernels (leaf columns, image
  /// computations).  Callers must preserve the trim invariant: bits beyond
  /// size() stay zero.
  [[nodiscard]] std::span<std::uint64_t> mutable_words() noexcept { return words_; }

  [[nodiscard]] std::size_t hash() const noexcept;

 private:
  static constexpr std::size_t kWordBits = 64;

  void trim();  // clears bits beyond size_ in the last word

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ictl::support
