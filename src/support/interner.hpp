// String interning: maps names to dense 32-bit ids and back.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ictl::support {

/// Bidirectional string <-> dense-id map.  Ids start at 0 and are assigned in
/// first-seen order, so they can index parallel arrays directly.
class StringInterner {
 public:
  using Id = std::uint32_t;

  /// Returns the id for `name`, interning it on first use.
  Id intern(std::string_view name);

  /// Returns the id for `name` if already interned.
  [[nodiscard]] std::optional<Id> lookup(std::string_view name) const;

  /// Returns the name for an id previously returned by intern().
  [[nodiscard]] const std::string& name(Id id) const;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  std::unordered_map<std::string, Id> ids_;
  std::vector<std::string> names_;
};

}  // namespace ictl::support
