// Hash helpers for composite keys.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

namespace ictl::support {

/// Mixes `value`'s hash into `seed` (boost-style combiner).
template <typename T>
inline void hash_combine(std::size_t& seed, const T& value) {
  seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = 0;
    hash_combine(seed, p.first);
    hash_combine(seed, p.second);
    return seed;
  }
};

}  // namespace ictl::support
