// Error handling for the ictl library.
//
// Public API functions validate their inputs and throw an exception derived
// from `ictl::Error` on misuse (bad formula syntax, non-total structures,
// out-of-range ids, ...).  Internal invariants use ICTL_ASSERT, which is
// compiled in all build types: these algorithms are subtle enough that we
// always want the checks.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace ictl {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a formula is syntactically or semantically ill-formed
/// (parse errors, ICTL* restriction violations, free index variables, ...).
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// Raised when a Kripke structure is ill-formed (non-total transition
/// relation, unknown state/prop ids, mismatched registries, ...).
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// Raised when a verification step cannot be completed (no correspondence
/// exists, certificate mismatch, unsupported fragment, ...).
class VerificationError : public Error {
 public:
  explicit VerificationError(const std::string& what) : Error(what) {}
};

namespace support {

/// Throws E(msg) when `condition` is false.  Used for public API input
/// validation; prefer ICTL_ASSERT for internal invariants.
template <typename E = Error>
inline void require(bool condition, std::string_view msg) {
  if (!condition) throw E(std::string(msg));
}

[[noreturn]] void assert_fail(const char* expr, const char* file, int line);

}  // namespace support
}  // namespace ictl

/// Always-on assertion for internal invariants.
#define ICTL_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::ictl::support::assert_fail(#expr, __FILE__, __LINE__))
