#include "support/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace ictl::support {

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "ICTL_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace ictl::support
