#include "support/interner.hpp"

#include "support/error.hpp"

namespace ictl::support {

StringInterner::Id StringInterner::intern(std::string_view name) {
  if (auto it = ids_.find(std::string(name)); it != ids_.end()) return it->second;
  const Id id = static_cast<Id>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<StringInterner::Id> StringInterner::lookup(std::string_view name) const {
  if (auto it = ids_.find(std::string(name)); it != ids_.end()) return it->second;
  return std::nullopt;
}

const std::string& StringInterner::name(Id id) const {
  ICTL_ASSERT(id < names_.size());
  return names_[id];
}

}  // namespace ictl::support
