#include "support/bitset.hpp"

#include <algorithm>

namespace ictl::support {

void DynamicBitset::resize(std::size_t new_size) {
  size_ = new_size;
  words_.resize((new_size + kWordBits - 1) / kWordBits, 0);
  trim();  // on shrink, drop bits of the new last word beyond new_size
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  ICTL_ASSERT(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  ICTL_ASSERT(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  ICTL_ASSERT(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::and_not(const DynamicBitset& other) {
  ICTL_ASSERT(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

void DynamicBitset::flip() {
  for (auto& w : words_) w = ~w;
  trim();
}

bool DynamicBitset::same_bits(const DynamicBitset& other) const noexcept {
  const std::size_t common = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < common; ++i)
    if (words_[i] != other.words_[i]) return false;
  // The wider operand must be zero past the shorter one; trailing bits past
  // size_ are already zero by the trim invariant.
  const auto& longer = words_.size() > other.words_.size() ? words_ : other.words_;
  for (std::size_t i = common; i < longer.size(); ++i)
    if (longer[i] != 0) return false;
  return true;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const {
  ICTL_ASSERT(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

bool DynamicBitset::intersects(const DynamicBitset& other) const {
  ICTL_ASSERT(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

std::size_t DynamicBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] != 0)
      return w * kWordBits + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
  return size_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const noexcept {
  ++i;
  if (i >= size_) return size_;
  std::size_t w = i / kWordBits;
  const std::uint64_t first = words_[w] >> (i % kWordBits);
  if (first != 0) return i + static_cast<std::size_t>(__builtin_ctzll(first));
  for (++w; w < words_.size(); ++w)
    if (words_[w] != 0)
      return w * kWordBits + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
  return size_;
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for_each([&](std::size_t i) { out.push_back(i); });
  return out;
}

std::size_t DynamicBitset::hash() const noexcept {
  std::size_t h = size_;
  for (auto w : words_) h = h * 1099511628211ULL + static_cast<std::size_t>(w);
  return h;
}

void DynamicBitset::trim() {
  const std::size_t used = size_ % kWordBits;
  if (!words_.empty() && used != 0)
    words_.back() &= (std::uint64_t{1} << used) - 1;
}

}  // namespace ictl::support
