#pragma once
// Fixture: not self-contained -- uses std::string without <string>.
inline std::string greet() { return "hi"; }
