// Fixture: raw-bdd-binding and discarded-ref firings and suppressions.
namespace fixture {

using Bdd = unsigned;

struct Manager {
  Bdd bdd_and(Bdd a, Bdd b);
  Bdd bdd_or(Bdd a, Bdd b);
  int protect_scope();
};

void leaky(Manager& m, Bdd a, Bdd b) {
  Bdd x = m.bdd_and(a, b);
  m.bdd_or(a, x);
  Bdd y = m.bdd_or(a, b);  // ictl-lint: allow(raw-bdd-binding)
  static_cast<void>(x + y);
}

void scoped(Manager& m, Bdd a, Bdd b) {
  const auto guard = m.protect_scope();
  Bdd x = m.bdd_and(a, b);
  static_cast<void>(guard + static_cast<int>(x));
}

}  // namespace fixture
