// ictl-lint: allow-file(naked-new)
// Fixture: allow-file suppresses every firing of the rule in the file.
namespace fixture {
inline int* make() { return new int(42); }
}  // namespace fixture
