// Fixture: missing-pragma-once (this header intentionally lacks it).
namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
