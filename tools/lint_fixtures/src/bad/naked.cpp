// Fixture: naked-new / naked-delete firings; `= delete` is exempt.
namespace fixture {

struct Node {
  Node() = default;
  Node(const Node&) = delete;
  int value = 0;
};

int leak() {
  Node* n = new Node();
  const int v = n->value;
  delete n;
  int* arr = new int[4];  // ictl-lint: allow(naked-new)
  delete[] arr;  // ictl-lint: allow(naked-new)
  return v;
}

}  // namespace fixture
