// Fixture: raw-bdd-member firings and suppressions.
#pragma once

#include <vector>

namespace fixture {

using Bdd = unsigned;
class BddRef {};

class Holder {
 public:
  void set(Bdd b);

 private:
  Bdd root_ = 0;
  std::vector<Bdd> frontier_;
  Bdd legacy_;  // ictl-lint: allow(raw-bdd-member)
  BddRef rooted_;
};

}  // namespace fixture
