// Fixture: obs-clock firings.  Raw steady_clock / high_resolution_clock
// outside src/obs/ and bench/ opens a second timing domain that profile
// spans and Chrome traces cannot see; obs::now_ns() is the one clock.
#include <chrono>
#include <cstdint>

namespace fixture {

std::uint64_t bad_steady() {
  const auto t = std::chrono::steady_clock::now();  // violation
  return static_cast<std::uint64_t>(t.time_since_epoch().count());
}

std::uint64_t bad_high_resolution() {
  using clock = std::chrono::high_resolution_clock;  // violation
  return static_cast<std::uint64_t>(clock::now().time_since_epoch().count());
}

std::uint64_t tolerated() {
  // A comment naming std::chrono::steady_clock must not fire.
  const auto t = std::chrono::steady_clock::now();  // ictl-lint: allow(obs-clock)
  return static_cast<std::uint64_t>(t.time_since_epoch().count());
}

}  // namespace fixture
