// budget-loop fixture: fixpoint-shaped while loops in an engine directory
// must contain an rt:: budget checkpoint so the resource-budget layer can
// interrupt them.

namespace rt {
void checkpoint(const char*);
void charge_work(unsigned long long, const char*);
}  // namespace rt

void eu_fixpoint(bool changed) {
  unsigned head = 0;
  const unsigned worklist = 4;
  while (head < worklist) {  // fires: worklist-shaped condition, no checkpoint
    ++head;
  }
  while (changed) {  // fires: classic `changed` fixpoint, no checkpoint
    changed = false;
  }
  while (changed) {  // clean: checkpointed body
    rt::charge_work(1, "fixture/fixpoint");
    changed = false;
  }
  unsigned frontier = 3;
  // ictl-lint: allow(budget-loop)
  while (frontier != 0) {  // clean: suppressed on the line above
    --frontier;
  }
  while (head < 2) ++head;  // clean: condition is not fixpoint-shaped
  do {
    ++head;
  } while (changed);  // clean: do-while tail, body already scanned above it
}
