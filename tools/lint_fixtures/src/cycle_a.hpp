// Fixture: include-cycle (with cycle_b.hpp).
#pragma once

#include "cycle_b.hpp"
