// Fixture: the telemetry spine reaching upward.  src/obs/ must stay a leaf
// every subsystem can include, so it may include project headers from obs/
// and support/ only.  (This file also sits inside src/obs/, so its raw
// chrono use below is exempt from obs-clock -- the spine IS the clock.)
#include "obs/obs.hpp"             // fine: the spine's own headers
#include "support/error.hpp"       // fine: shared error types
#include "kripke/structure.hpp"    // violation: a backend pulled into the spine
#include "eval/fixpoint_program.hpp"  // violation: the eval core pulled in

// System headers are always fine.
#include <chrono>

namespace fixture {

long exempt_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
