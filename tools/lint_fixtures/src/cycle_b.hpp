// Fixture: include-cycle (with cycle_a.hpp).
#pragma once

#include "cycle_a.hpp"
