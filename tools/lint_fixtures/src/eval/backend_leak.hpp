// Fixture: the evaluation core reaching into a backend.  eval/ may include
// project headers from eval/, logic/ and support/ only; kripke/ and
// symbolic/ must stay behind the StateSetOps concept.
#pragma once

#include "logic/formula.hpp"      // fine: the IR speaks formulas
#include "support/error.hpp"      // fine: shared error types
#include "kripke/structure.hpp"   // violation: explicit backend leaks in
#include "symbolic/bdd.hpp"       // violation: BDD backend leaks in

// System headers are always fine.
#include <vector>
