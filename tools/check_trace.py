#!/usr/bin/env python3
"""check_trace -- validate a Chrome-trace-event JSON file.

Checks that the file is what chrome://tracing / Perfetto would accept from
obs::trace_stop():

  * top-level object with a "traceEvents" array;
  * every event has name / cat / ph / ts / pid / tid, with ph one of B or E;
  * timestamps are monotonically non-decreasing in buffer order (the obs
    buffer is append-only single-threaded, so any regression is a bug);
  * B and E events pair up with stack discipline per (pid, tid): every E
    matches the innermost open B's (name, cat), and nothing stays open;
  * with --require CAT/NAME (repeatable): a complete B/E span with that
    category and name exists -- used by the ctest case to prove that every
    instrumented layer landed in the timeline.

Exit status: 0 valid, 1 malformed or missing a required span, 2 usage/IO.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    return 1


def main():
    parser = argparse.ArgumentParser(prog="check_trace", description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="CAT/NAME",
        help="require a complete span with this category and name (repeatable)",
    )
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="minimum number of events (default 1: an empty trace is a bug)",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_trace: cannot read {args.trace}: {e}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        return fail(f"{args.trace} is not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail('top level must be an object with a "traceEvents" array')
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail('"traceEvents" must be an array')
    if len(events) < args.min_events:
        return fail(f"only {len(events)} events (expected >= {args.min_events})")

    open_stacks = {}  # (pid, tid) -> [(name, cat)]
    complete = set()  # (cat, name) of spans whose B and E both appeared
    last_ts = None
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i} is not an object")
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in ev:
                return fail(f"event {i} lacks required key {key!r}")
        if ev["ph"] not in ("B", "E"):
            return fail(f"event {i} has phase {ev['ph']!r} (expected B or E)")
        if not isinstance(ev["ts"], (int, float)):
            return fail(f"event {i} timestamp is not numeric")
        if last_ts is not None and ev["ts"] < last_ts:
            return fail(
                f"event {i} timestamp {ev['ts']} regresses below {last_ts}"
            )
        last_ts = ev["ts"]

        stack = open_stacks.setdefault((ev["pid"], ev["tid"]), [])
        if ev["ph"] == "B":
            stack.append((ev["name"], ev["cat"]))
        else:
            if not stack:
                return fail(f"event {i}: E for {ev['name']!r} with no open B")
            name, cat = stack.pop()
            if (name, cat) != (ev["name"], ev["cat"]):
                return fail(
                    f"event {i}: E for {ev['cat']}/{ev['name']} does not "
                    f"match innermost open B {cat}/{name}"
                )
            complete.add(f"{ev['cat']}/{ev['name']}")

    dangling = [
        f"{cat}/{name}"
        for stack in open_stacks.values()
        for name, cat in stack
    ]
    if dangling:
        return fail("unclosed B events: " + ", ".join(dangling))

    missing = [spec for spec in args.require if spec not in complete]
    if missing:
        return fail(
            "required spans absent: "
            + ", ".join(missing)
            + "; present: "
            + ", ".join(sorted(complete))
        )

    print(
        f"check_trace: OK ({len(events)} events, "
        f"{len(complete)} distinct spans)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
