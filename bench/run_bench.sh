#!/usr/bin/env bash
# Runs the Google Benchmark binaries with --benchmark_format=json and merges
# the per-binary results into one JSON file (default: BENCH_2.json in the
# repo root), so the perf trajectory accumulates PR over PR.
#
# Usage:
#   bench/run_bench.sh [OUTPUT.json]
#
# Environment:
#   BUILD_DIR         build tree to use (default: build)
#   BENCHES           space-separated binary names (default: every bench_*
#                     binary found in $BUILD_DIR/bench)
#   BENCHMARK_FILTER  regex forwarded as --benchmark_filter (default: all)
#
# The script configures the build tree with ICTL_BUILD_BENCH=ON if needed;
# binaries are skipped with a notice when Google Benchmark is unavailable.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_2.json}"
BUILD_DIR="${BUILD_DIR:-build}"
FILTER="${BENCHMARK_FILTER:-}"

cmake -B "$BUILD_DIR" -S . -DICTL_BUILD_BENCH=ON >/dev/null
cmake --build "$BUILD_DIR" -j >/dev/null

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "run_bench: no bench binaries were built (Google Benchmark missing?)" >&2
  exit 1
fi

if [ -z "${BENCHES:-}" ]; then
  BENCHES="$(cd "$BUILD_DIR/bench" && ls bench_* 2>/dev/null | tr '\n' ' ')"
fi

TMPDIR_RESULTS="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_RESULTS"' EXIT

for b in $BENCHES; do
  bin="$BUILD_DIR/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "run_bench: skipping $b (not built)" >&2
    continue
  fi
  echo "run_bench: $b" >&2
  args=(--benchmark_format=json)
  if [ -n "$FILTER" ]; then
    args+=("--benchmark_filter=$FILTER")
  fi
  "$bin" "${args[@]}" >"$TMPDIR_RESULTS/$b.json"
done

python3 - "$OUT" "$TMPDIR_RESULTS" <<'EOF'
import json, os, sys, datetime

out_path, results_dir = sys.argv[1], sys.argv[2]
merged = {
    "schema": "ictl-bench-v1",
    "generated_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "results": {},
}
# Preserve hand-recorded cross-PR comparisons when regenerating.
if os.path.exists(out_path):
    try:
        with open(out_path) as f:
            prev = json.load(f)
        if "headline_vs_seed" in prev:
            merged["headline_vs_seed"] = prev["headline_vs_seed"]
    except (json.JSONDecodeError, OSError):
        pass
for name in sorted(os.listdir(results_dir)):
    if not name.endswith(".json"):
        continue
    with open(os.path.join(results_dir, name)) as f:
        merged["results"][name[:-len(".json")]] = json.load(f)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"run_bench: wrote {out_path}")
EOF
