#!/usr/bin/env bash
# Runs the Google Benchmark binaries with --benchmark_format=json and merges
# the per-binary results into one JSON file, so the perf trajectory
# accumulates PR over PR.
#
# Usage:
#   bench/run_bench.sh [PR_NUMBER | OUTPUT.json]
#
#   PR_NUMBER    a bare number N writes BENCH_N.json in the repo root (the
#                committed per-PR convention: BENCH_2.json, BENCH_4.json, ...)
#   OUTPUT.json  any other argument is taken as the output path verbatim
#   (no arg)     writes BENCH_dev.json — uncommitted scratch output
#
# Environment:
#   BUILD_DIR         build tree to use (default: build)
#   BENCHES           space-separated binary names (default: every bench_*
#                     binary found in $BUILD_DIR/bench: bench_conjecture,
#                     bench_correspondence, bench_eval, bench_ltl_to_buchi,
#                     bench_mc_direct_vs_reduced, bench_ring_certificate,
#                     bench_state_explosion, bench_symbolic)
#   BENCHMARK_FILTER  regex forwarded as --benchmark_filter (default: all)
#   BENCH_BASELINE    snapshot to diff against with bench/compare_bench.py
#                     (default: the highest-numbered committed BENCH_N.json
#                     other than the output; set empty to skip)
#
# The script configures the build tree with ICTL_BUILD_BENCH=ON if needed;
# binaries are skipped with a notice when Google Benchmark is unavailable.
set -euo pipefail

usage() {
  # The usage text is the header comment above, minus the shebang and the
  # leading '# ' — one source of truth for both.
  sed -n '2,27p' "$0" | sed 's/^# \{0,1\}//'
}

cd "$(dirname "$0")/.." || exit 1
ARG="${1:-}"
if [ "$ARG" = "--help" ] || [ "$ARG" = "-h" ]; then
  usage
  exit 0
fi
if [ -z "$ARG" ]; then
  OUT="BENCH_dev.json"
elif [[ "$ARG" =~ ^[0-9]+$ ]]; then
  OUT="BENCH_${ARG}.json"
else
  OUT="$ARG"
fi
BUILD_DIR="${BUILD_DIR:-build}"
FILTER="${BENCHMARK_FILTER:-}"

cmake -B "$BUILD_DIR" -S . -DICTL_BUILD_BENCH=ON >/dev/null
cmake --build "$BUILD_DIR" -j >/dev/null

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "run_bench: no bench binaries were built (Google Benchmark missing?)" >&2
  exit 1
fi

if [ -n "${BENCHES:-}" ]; then
  read -r -a BENCH_LIST <<<"$BENCHES"
else
  BENCH_LIST=()
  for bin in "$BUILD_DIR"/bench/bench_*; do
    [ -e "$bin" ] && BENCH_LIST+=("$(basename "$bin")")
  done
fi

TMPDIR_RESULTS="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_RESULTS"' EXIT

for b in "${BENCH_LIST[@]}"; do
  bin="$BUILD_DIR/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "run_bench: skipping $b (not built)" >&2
    continue
  fi
  echo "run_bench: $b" >&2
  args=(--benchmark_format=json)
  if [ -n "$FILTER" ]; then
    args+=("--benchmark_filter=$FILTER")
  fi
  # Fail loudly and immediately on a non-zero benchmark exit: the merge step
  # below never runs, so a crash can't leave a partial snapshot behind.
  status=0
  "$bin" "${args[@]}" >"$TMPDIR_RESULTS/$b.json" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "run_bench: $b exited with status $status; aborting without writing $OUT" >&2
    exit "$status"
  fi
done

python3 - "$OUT" "$TMPDIR_RESULTS" <<'EOF'
import json, os, sys, datetime

out_path, results_dir = sys.argv[1], sys.argv[2]
merged = {
    "schema": "ictl-bench-v1",
    "generated_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    "results": {},
}
# Preserve hand-recorded cross-PR comparisons (any "headline*" key) and the
# results of binaries NOT re-run this time (so a BENCHES=bench_foo refresh
# of one flaky section keeps the rest of the snapshot) when regenerating.
if os.path.exists(out_path):
    try:
        with open(out_path) as f:
            prev = json.load(f)
        for key, value in prev.items():
            if key.startswith("headline"):
                merged[key] = value
        merged["results"].update(prev.get("results", {}))
    except (json.JSONDecodeError, OSError):
        pass
for name in sorted(os.listdir(results_dir)):
    if not name.endswith(".json"):
        continue
    with open(os.path.join(results_dir, name)) as f:
        merged["results"][name[:-len(".json")]] = json.load(f)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"run_bench: wrote {out_path}")
EOF

# When a previous committed snapshot exists, print the speedup/regression
# table against it (informational; never fails the run).
if [ -z "${BENCH_BASELINE+x}" ]; then
  BENCH_BASELINE=""
  for snap in BENCH_[0-9]*.json; do
    [ -e "$snap" ] || continue
    [ "$snap" = "$OUT" ] && continue
    # version-sort by hand: keep the highest-numbered snapshot seen so far
    if [ -z "$BENCH_BASELINE" ] ||
       [ "$(printf '%s\n%s\n' "$BENCH_BASELINE" "$snap" | sort -V | tail -1)" = "$snap" ]; then
      BENCH_BASELINE="$snap"
    fi
  done
fi
if [ -n "$BENCH_BASELINE" ] && [ -f "$BENCH_BASELINE" ]; then
  echo "run_bench: comparing against $BENCH_BASELINE" >&2
  python3 bench/compare_bench.py "$BENCH_BASELINE" "$OUT" || true
fi
