// FIG-3.1 / CORR-2R / ALG-ABL: the correspondence decision procedure.
//
// Measures the Section 3 greatest-fixpoint decision on growing structures,
// the effect of the stuttering-equivalence pre-filter (design-choice
// ablation), the literal clause checker, and the baseline equivalences
// (strong bisimulation, stuttering partition) for comparison.
#include <benchmark/benchmark.h>

#include "ictl.hpp"

namespace {

using namespace ictl;

kripke::Structure stuttered(kripke::PropRegistryPtr reg, std::size_t run) {
  kripke::StructureBuilder b(reg);
  const auto pa = reg->plain("a");
  const auto pb = reg->plain("b");
  std::vector<kripke::StateId> as;
  for (std::size_t i = 0; i < run; ++i) as.push_back(b.add_state({pa}));
  const auto sb = b.add_state({pb});
  for (std::size_t i = 0; i + 1 < run; ++i) b.add_transition(as[i], as[i + 1]);
  b.add_transition(as.back(), sb);
  b.add_transition(sb, as.front());
  b.set_initial(as.front());
  return std::move(b).build();
}

void BM_FindCorrespondence_StutterRuns(benchmark::State& state) {
  const auto run = static_cast<std::size_t>(state.range(0));
  auto reg = kripke::make_registry();
  const auto a = stuttered(reg, 2);
  const auto b = stuttered(reg, run);
  for (auto _ : state) {
    auto found = bisim::find_correspondence(a, b);
    benchmark::DoNotOptimize(found.relation.has_value());
  }
  state.counters["run"] = static_cast<double>(run);
}
BENCHMARK(BM_FindCorrespondence_StutterRuns)->RangeMultiplier(2)->Range(4, 64);

// Ablation: the stuttering pre-filter on ring reductions.
void BM_RingReductionCorrespondence(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const bool prefilter = state.range(1) != 0;
  auto reg = kripke::make_registry();
  const auto m3 = ring::RingSystem::build(3, reg);
  const auto mr = ring::RingSystem::build(r, reg);
  bisim::FindOptions options;
  options.use_stuttering_prefilter = prefilter;
  std::size_t candidates = 0;
  for (auto _ : state) {
    auto found = bisim::find_indexed_correspondence(m3.structure(), mr.structure(),
                                                    2, 2, options);
    candidates = found.candidate_pairs;
    benchmark::DoNotOptimize(found.corresponds());
  }
  state.counters["candidate_pairs"] = static_cast<double>(candidates);
  state.SetLabel(prefilter ? "with_prefilter" : "no_prefilter");
}
BENCHMARK(BM_RingReductionCorrespondence)
    ->Args({4, 1})->Args({4, 0})
    ->Args({5, 1})->Args({5, 0})
    ->Args({6, 1})->Args({6, 0})
    ->Args({7, 1})->Args({7, 0})
    ->Unit(benchmark::kMillisecond);

// The literal Section 3 clause checker on the coarsest relation.
void BM_ValidateRelation(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  auto reg = kripke::make_registry();
  const auto m3 = ring::RingSystem::build(3, reg);
  const auto mr = ring::RingSystem::build(r, reg);
  auto found =
      bisim::find_indexed_correspondence(m3.structure(), mr.structure(), 2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(found.relation->validate().empty());
  }
  state.counters["pairs"] = static_cast<double>(found.relation->num_pairs());
}
BENCHMARK(BM_ValidateRelation)->DenseRange(3, 7, 1)->Unit(benchmark::kMillisecond);

// Baselines: strong bisimulation and stuttering partitioning on the same
// inputs (strong bisim is finer and cannot justify the reduction, but shows
// the partition-refinement cost floor).
void BM_StrongBisimPartition(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  for (auto _ : state) {
    auto p = bisim::strong_bisimulation_partition(sys.structure());
    benchmark::DoNotOptimize(p.num_blocks());
  }
  state.counters["states"] = static_cast<double>(sys.structure().num_states());
}
BENCHMARK(BM_StrongBisimPartition)->DenseRange(3, 10, 1)->Unit(benchmark::kMillisecond);

void BM_StutteringPartition(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  const auto reduced = kripke::reduce_to_index(sys.structure(), 2);
  for (auto _ : state) {
    auto p = bisim::stuttering_partition(reduced);
    benchmark::DoNotOptimize(p.num_blocks());
  }
  state.counters["states"] = static_cast<double>(reduced.num_states());
}
BENCHMARK(BM_StutteringPartition)->DenseRange(3, 10, 1)->Unit(benchmark::kMillisecond);

// Lemma 1's constructive path matching.
void BM_PathMatch(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  auto reg = kripke::make_registry();
  const auto a = stuttered(reg, 2);
  const auto b = stuttered(reg, 5);
  auto found = bisim::find_correspondence(a, b);
  std::vector<kripke::StateId> path{a.initial()};
  while (path.size() < length)
    path.push_back(a.successors(path.back()).front());
  for (auto _ : state) {
    auto match = bisim::match_path(*found.relation, path, b.initial());
    benchmark::DoNotOptimize(match.has_value());
  }
}
BENCHMARK(BM_PathMatch)->RangeMultiplier(4)->Range(4, 1024);

}  // namespace

BENCHMARK_MAIN();
