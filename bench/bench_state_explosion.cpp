// EXPLOSION: the state explosion phenomenon (paper introduction).
//
// |S_r| = r * 2^r grows exponentially; this bench measures explicit
// construction of M_r and contrasts it with the O(1)-in-r cost of the
// analytic certificate that makes the paper's method worthwhile.
#include <benchmark/benchmark.h>

#include "ictl.hpp"

namespace {

using namespace ictl;

void BM_BuildRing(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  std::size_t states = 0, transitions = 0;
  for (auto _ : state) {
    const auto sys = ring::RingSystem::build(r);
    states = sys.structure().num_states();
    transitions = sys.structure().num_transitions();
    benchmark::DoNotOptimize(sys);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["transitions"] = static_cast<double>(transitions);
  state.counters["r"] = r;
}
BENCHMARK(BM_BuildRing)->DenseRange(2, 14, 1)->Unit(benchmark::kMillisecond);

void BM_BuildRingLarge(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto sys = ring::RingSystem::build(r);
    benchmark::DoNotOptimize(sys);
  }
  state.counters["states"] = static_cast<double>(ring::ring_state_count(r));
}
BENCHMARK(BM_BuildRingLarge)->Arg(16)->Unit(benchmark::kMillisecond)->Iterations(1);

// The paper's alternative: never build M_r at all.
void BM_AnalyticCertificate(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto cert = ring::analytic_ring_certificate(r);
    benchmark::DoNotOptimize(cert);
  }
  state.counters["r"] = r;
}
BENCHMARK(BM_AnalyticCertificate)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

// Free products explode too (2^n): the Fig. 4.1 family.
void BM_BuildCountingNetwork(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    auto reg = kripke::make_registry();
    const auto m = network::counting_network(n, reg);
    states = m.num_states();
    benchmark::DoNotOptimize(m);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_BuildCountingNetwork)->DenseRange(2, 14, 2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
