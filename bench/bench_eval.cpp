// Benchmarks for the evaluation core introduced with src/eval/: compiling
// CTL to FixpointProgram IR (throughput + the per-formula program cache)
// and running the compiled programs through the explicit backend on rings.
// BM_CompiledCtlLabelingOnRing mirrors BM_CtlLabelingOnRing in
// bench_mc_direct_vs_reduced.cpp — same structure, same formula — so the
// compile-then-evaluate façade's overhead over the old recursive walk is a
// direct A/B in one snapshot.  Per-run counters surface the compiler and
// evaluator stats blocks (instructions, CSE hits, fixpoint iterations,
// register high-water).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "ictl.hpp"

namespace {

using namespace ictl;

std::vector<std::uint32_t> indices_up_to(std::uint32_t r) {
  std::vector<std::uint32_t> indices;
  for (std::uint32_t i = 1; i <= r; ++i) indices.push_back(i);
  return indices;
}

// Pure compile throughput: lower the whole Section 5 suite for an r-process
// index set, cold compiler every iteration (no cache hits).  Index
// expansion makes program size linear in r, so the Arg sweep doubles as a
// codegen-scaling check.
void BM_CompileSectionFiveSuite(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto indices = indices_up_to(r);
  const auto suite = ring::section5_specifications();
  std::uint64_t instructions = 0;
  std::uint64_t cse_hits = 0;
  for (auto _ : state) {
    eval::ProgramCompiler compiler(indices);
    instructions = 0;
    for (const auto& [name, f] : suite) {
      const auto program = compiler.compile(f);
      instructions += program->code.size();
      benchmark::DoNotOptimize(program->num_registers);
    }
    cse_hits = compiler.stats().cse_hits;
  }
  state.counters["instructions"] = static_cast<double>(instructions);
  state.counters["cse_hits"] = static_cast<double>(cse_hits);
  state.SetComplexityN(r);
}
BENCHMARK(BM_CompileSectionFiveSuite)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Complexity();

// The warm path every re-check takes: compile() on an already-compiled
// formula is one hash lookup returning the shared program.
void BM_CompileCacheHit(benchmark::State& state) {
  eval::ProgramCompiler compiler(indices_up_to(8));
  const auto suite = ring::section5_specifications();
  for (const auto& [name, f] : suite)
    benchmark::DoNotOptimize(compiler.compile(f));
  for (auto _ : state) {
    for (const auto& [name, f] : suite)
      benchmark::DoNotOptimize(compiler.compile(f));
  }
  state.counters["cache_hits"] =
      static_cast<double>(compiler.stats().cache_hits);
}
BENCHMARK(BM_CompileCacheHit);

// Compile + evaluate through the mc::CtlChecker façade on growing rings:
// the compiled-core twin of BM_CtlLabelingOnRing (same structure, same
// property_eventually_critical).  Fresh checker per iteration so the memo
// never short-circuits the evaluator.
void BM_CompiledCtlLabelingOnRing(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  const auto f = ring::property_eventually_critical();
  eval::EvalStats stats;
  for (auto _ : state) {
    mc::CtlChecker checker(sys.structure());
    benchmark::DoNotOptimize(checker.sat(f));
    stats = checker.eval_stats();
  }
  state.counters["states"] = static_cast<double>(sys.structure().num_states());
  state.counters["instructions"] = static_cast<double>(stats.instructions);
  state.counters["fixpoint_iterations"] =
      static_cast<double>(stats.fixpoint_iterations);
  state.counters["register_high_water"] =
      static_cast<double>(stats.register_high_water);
  // Per-opcode executed-instruction counts (one checker run), so the
  // BENCH_N.json snapshot records the opcode mix, not just the total.
  for (std::size_t i = 0; i < eval::kNumOpCodes; ++i) {
    if (stats.op_count[i] == 0) continue;
    state.counters["op_" +
                   std::string(eval::opcode_name(
                       static_cast<eval::OpCode>(i)))] =
        static_cast<double>(stats.op_count[i]);
  }
}
BENCHMARK(BM_CompiledCtlLabelingOnRing)
    ->DenseRange(2, 13, 1)
    ->Unit(benchmark::kMillisecond);

// The full Section 5 suite through one warm explicit checker: programs
// compile once, every sat() after that is evaluator time only.
void BM_CompiledSectionFiveSuite(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  const auto suite = ring::section5_specifications();
  mc::CtlChecker warm(sys.structure());
  for (const auto& [name, f] : suite)
    benchmark::DoNotOptimize(warm.holds_initially(f));
  for (auto _ : state) {
    mc::CtlChecker checker(sys.structure());
    for (const auto& [name, f] : suite)
      benchmark::DoNotOptimize(checker.holds_initially(f));
  }
  state.counters["programs"] =
      static_cast<double>(warm.compile_stats().programs_compiled);
}
BENCHMARK(BM_CompiledSectionFiveSuite)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
