// FIG-4.1 / CONJ-6: the counting family and the Section 6 conjecture.
#include <benchmark/benchmark.h>

#include "ictl.hpp"

namespace {

using namespace ictl;

void BM_CountingFormula(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  auto reg = kripke::make_registry();
  const auto m = network::counting_network(n, reg);
  const auto f = network::at_least_k_processes(k);
  bool verdict = false;
  for (auto _ : state) {
    verdict = mc::holds(m, f);
    benchmark::DoNotOptimize(verdict);
  }
  state.SetLabel(verdict ? "holds" : "fails");
  state.counters["states"] = static_cast<double>(m.num_states());
}
BENCHMARK(BM_CountingFormula)
    ->Args({4, 2})->Args({4, 4})->Args({4, 6})
    ->Args({8, 4})->Args({8, 8})
    ->Args({10, 5})
    ->Unit(benchmark::kMillisecond);

void BM_DepthFamilyAgreement(benchmark::State& state) {
  // Evaluate every depth-k formula on sizes k+1 and k+2 and count
  // agreements (the conjecture says: all of them).
  const auto k = static_cast<std::size_t>(state.range(0));
  auto reg = kripke::make_registry();
  const auto m1 = network::counting_network(k + 1, reg);
  const auto m2 = network::counting_network(k + 2, reg);
  const auto family = network::depth_k_formula_family(k);
  std::size_t agreements = 0;
  for (auto _ : state) {
    agreements = 0;
    for (const auto& f : family)
      agreements += mc::holds(m1, f) == mc::holds(m2, f) ? 1 : 0;
    benchmark::DoNotOptimize(agreements);
  }
  state.counters["formulas"] = static_cast<double>(family.size());
  state.counters["agreements"] = static_cast<double>(agreements);
}
BENCHMARK(BM_DepthFamilyAgreement)->DenseRange(0, 3, 1)->Unit(benchmark::kMillisecond);

void BM_CountingNetworkCorrespondence(benchmark::State& state) {
  // Free products of identical processes correspond across sizes (which is
  // why only UNRESTRICTED formulas can count them).
  const auto n = static_cast<std::size_t>(state.range(0));
  auto reg = kripke::make_registry();
  const auto a = network::counting_network(n, reg);
  const auto b = network::counting_network(n + 1, reg);
  for (auto _ : state) {
    auto found = bisim::find_indexed_correspondence(a, b, 1, 1);
    benchmark::DoNotOptimize(found.corresponds());
  }
  state.counters["states_a"] = static_cast<double>(a.num_states());
}
BENCHMARK(BM_CountingNetworkCorrespondence)->DenseRange(2, 6, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
