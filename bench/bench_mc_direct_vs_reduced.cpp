// PROP-5 / XFER-1000: model checking the Section 5 properties directly on
// M_r versus the paper's reduced method (check M_3, certify, transfer).
//
// Direct cost grows with r * 2^r; the reduced method's cost is the constant
// cost of M_3 plus a certificate.  Who wins and where the crossover falls is
// the paper's core value proposition.
#include <benchmark/benchmark.h>

#include "ictl.hpp"

namespace {

using namespace ictl;

// Direct: build M_r (cost excluded — see BM_BuildRing) and check all four
// properties plus both invariants.
void BM_DirectCheck(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  const auto specs = ring::section5_specifications();
  for (auto _ : state) {
    mc::Checker checker(sys.structure());
    bool all = true;
    for (const auto& [name, f] : specs) all = all && checker.holds_initially(f);
    benchmark::DoNotOptimize(all);
  }
  state.counters["states"] = static_cast<double>(sys.structure().num_states());
}
BENCHMARK(BM_DirectCheck)->DenseRange(2, 12, 1)->Unit(benchmark::kMillisecond);

// Reduced: check on M_3 once and transfer via the analytic certificate.
// The cost is independent of r.
void BM_ReducedCheck(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto base = ring::RingSystem::build(ring::kRingBaseSize);
  const auto specs = ring::section5_specifications();
  for (auto _ : state) {
    mc::Checker checker(base.structure());
    bool all = true;
    for (const auto& [name, f] : specs) all = all && checker.holds_initially(f);
    const auto cert = ring::analytic_ring_certificate(r);
    for (const auto& [name, f] : specs) all = all && cert.transfers(f);
    benchmark::DoNotOptimize(all);
  }
  state.counters["r"] = r;
}
BENCHMARK(BM_ReducedCheck)->Arg(4)->Arg(8)->Arg(12)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Reduced with a mechanically validated (explicit) certificate: polynomial
// in the target size via the generic decision procedure on reductions.
void BM_ReducedCheckExplicitCertificate(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  auto reg = kripke::make_registry();
  const auto base = ring::RingSystem::build(ring::kRingBaseSize, reg);
  const auto target = ring::RingSystem::build(r, reg);
  for (auto _ : state) {
    const auto cert = ring::explicit_ring_certificate(base, target);
    benchmark::DoNotOptimize(cert.valid);
  }
  state.counters["target_states"] = static_cast<double>(target.structure().num_states());
}
BENCHMARK(BM_ReducedCheckExplicitCertificate)
    ->DenseRange(3, 8, 1)
    ->Unit(benchmark::kMillisecond);

// The CTL labeling algorithm alone on growing rings (substrate scaling).
void BM_CtlLabelingOnRing(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  const auto f = ring::property_eventually_critical();
  for (auto _ : state) {
    mc::CtlChecker checker(sys.structure());
    benchmark::DoNotOptimize(checker.holds_initially(f));
  }
  state.counters["states"] = static_cast<double>(sys.structure().num_states());
}
BENCHMARK(BM_CtlLabelingOnRing)->DenseRange(2, 13, 1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
