// Substrate bench + ALG-ABL: the GPVW tableau translation and the CTL
// fast path ablation inside the CTL* checker.
#include <benchmark/benchmark.h>

#include "ictl.hpp"

namespace {

using namespace ictl;

logic::FormulaPtr until_chain(std::size_t n) {
  logic::FormulaPtr f = logic::atom("p" + std::to_string(n));
  for (std::size_t i = n - 1; i >= 1; --i)
    f = logic::make_until(logic::atom("p" + std::to_string(i)), f);
  return f;
}

void BM_TableauUntilChain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto f = logic::to_nnf(logic::desugar(until_chain(n)));
  std::size_t nodes = 0;
  for (auto _ : state) {
    const auto gba = mc::build_gba(f);
    nodes = gba.nodes.size();
    benchmark::DoNotOptimize(gba);
  }
  state.counters["gba_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_TableauUntilChain)->DenseRange(2, 9, 1);

void BM_TableauFairness(benchmark::State& state) {
  // Conjunctions of GF p_i: the classic hard case for tableau size.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<logic::FormulaPtr> conjuncts;
  for (std::size_t i = 1; i <= n; ++i)
    conjuncts.push_back(logic::make_always(
        logic::make_eventually(logic::atom("p" + std::to_string(i)))));
  const auto f = logic::to_nnf(logic::desugar(logic::make_and(conjuncts)));
  std::size_t nodes = 0;
  for (auto _ : state) {
    const auto gba = mc::build_gba(f);
    nodes = gba.nodes.size();
    benchmark::DoNotOptimize(gba);
  }
  state.counters["gba_nodes"] = static_cast<double>(nodes);
  state.counters["acc_sets"] = static_cast<double>(n);
}
BENCHMARK(BM_TableauFairness)->DenseRange(1, 5, 1);

// Ablation: CTL-fragment formulas through the labeling fast path versus the
// generic tableau route — same verdicts, very different costs.
void BM_CtlFormulaFastPath(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const bool fast = state.range(1) != 0;
  const auto sys = ring::RingSystem::build(r);
  const auto f = ring::property_eventually_critical();
  mc::CheckerOptions options;
  options.use_ctl_fast_path = fast;
  for (auto _ : state) {
    mc::Checker checker(sys.structure(), options);
    benchmark::DoNotOptimize(checker.holds_initially(f));
  }
  state.SetLabel(fast ? "fast_path" : "tableau");
  state.counters["states"] = static_cast<double>(sys.structure().num_states());
}
BENCHMARK(BM_CtlFormulaFastPath)
    ->Args({4, 1})->Args({4, 0})
    ->Args({6, 1})->Args({6, 0})
    ->Args({8, 1})->Args({8, 0})
    ->Unit(benchmark::kMillisecond);

// Genuine CTL* (no CTL equivalent without rewriting): E(F p & G q)-style.
void BM_GenuineCtlStar(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  const auto f = logic::parse_formula("E (F c[1] & G !d[1])");
  for (auto _ : state) {
    mc::Checker checker(sys.structure());
    benchmark::DoNotOptimize(checker.holds_initially(f));
  }
  state.counters["states"] = static_cast<double>(sys.structure().num_states());
}
BENCHMARK(BM_GenuineCtlStar)->DenseRange(3, 9, 1)->Unit(benchmark::kMillisecond);

void BM_ParseSection5Specs(benchmark::State& state) {
  for (auto _ : state) {
    auto specs = ring::section5_specifications();
    benchmark::DoNotOptimize(specs);
  }
}
BENCHMARK(BM_ParseSection5Specs);

}  // namespace

BENCHMARK_MAIN();
