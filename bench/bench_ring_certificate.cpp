// INV-5 / RANK-A / CORR-2R: everything that goes into a ring certificate —
// per-instance invariant checking, the symbolic (size-independent) proofs,
// the Appendix rank function, and full certificate construction.
#include <benchmark/benchmark.h>

#include "ictl.hpp"

namespace {

using namespace ictl;

void BM_InvariantsPerInstance(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  const auto inv2 = ring::invariant_request_persistence();
  const auto inv3 = ring::invariant_one_token();
  for (auto _ : state) {
    mc::Checker checker(sys.structure());
    bool both = checker.holds_initially(inv2) && checker.holds_initially(inv3);
    // Invariant 1 is structural.
    for (kripke::StateId s = 0; s < sys.structure().num_states(); ++s)
      both = both && ring::parts_form_partition(sys.state(s), r);
    benchmark::DoNotOptimize(both);
  }
  state.counters["states"] = static_cast<double>(sys.structure().num_states());
}
BENCHMARK(BM_InvariantsPerInstance)->DenseRange(2, 12, 1)->Unit(benchmark::kMillisecond);

// The symbolic prover: constant work, valid for EVERY r.
void BM_SymbolicInvariantProof(benchmark::State& state) {
  for (auto _ : state) {
    const auto report = ring::prove_ring_invariants();
    benchmark::DoNotOptimize(report.all_proved());
  }
}
BENCHMARK(BM_SymbolicInvariantProof);

void BM_RankClosedForm(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (kripke::StateId s = 0; s < sys.structure().num_states(); ++s)
      for (std::uint32_t i = 1; i <= r; ++i) sum += ring::rank(sys.state(s), i, r);
    benchmark::DoNotOptimize(sum);
  }
  state.counters["pairs"] =
      static_cast<double>(sys.structure().num_states()) * r;
}
BENCHMARK(BM_RankClosedForm)->DenseRange(3, 10, 1)->Unit(benchmark::kMillisecond);

void BM_RankBruteForce(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (kripke::StateId s = 0; s < sys.structure().num_states(); ++s)
      for (std::uint32_t i = 1; i <= r; ++i) sum += ring::brute_force_rank(sys, s, i);
    benchmark::DoNotOptimize(sum);
  }
  state.counters["pairs"] =
      static_cast<double>(sys.structure().num_states()) * r;
}
BENCHMARK(BM_RankBruteForce)->DenseRange(3, 8, 1)->Unit(benchmark::kMillisecond);

void BM_ExplicitCertificate(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  auto reg = kripke::make_registry();
  const auto base = ring::RingSystem::build(3, reg);
  const auto target = ring::RingSystem::build(r, reg);
  for (auto _ : state) {
    const auto cert = ring::explicit_ring_certificate(base, target);
    benchmark::DoNotOptimize(cert.valid);
  }
  state.counters["in_pairs"] = static_cast<double>(r);
}
BENCHMARK(BM_ExplicitCertificate)->DenseRange(3, 7, 1)->Unit(benchmark::kMillisecond);

// The paper's own Section 5 relation (rank-sum degrees), constructed and
// pushed through the literal clause checker — the reproduction finding
// (validation fails) costs nothing extra to re-confirm.
void BM_PaperRelationValidation(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  auto reg = kripke::make_registry();
  const auto base = ring::RingSystem::build(3, reg);
  const auto target = ring::RingSystem::build(r, reg);
  bool violations_found = false;
  for (auto _ : state) {
    const ring::ExplicitRingCorrespondence corr(base, 2, target, 2);
    violations_found = !corr.relation().validate(1).empty();
    benchmark::DoNotOptimize(violations_found);
  }
  state.SetLabel(violations_found ? "paper_relation_INVALID (the finding)"
                                  : "paper_relation_valid");
}
BENCHMARK(BM_PaperRelationValidation)->DenseRange(3, 6, 1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
