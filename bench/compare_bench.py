#!/usr/bin/env python3
"""Diffs two ictl benchmark snapshots (the BENCH_N.json files produced by
bench/run_bench.sh) and prints a per-benchmark speedup/regression table.

Usage:
    bench/compare_bench.py OLD.json NEW.json [--format=text|md] [--threshold=X]

Benchmarks are matched by (binary, benchmark name); entries present in only
one snapshot appear as `new` / `gone` rows in the table.  `--threshold`
(default 1.10) is the ratio beyond which a change is flagged as a
speedup/regression rather than noise.  Perf deltas never gate (hosted
runners are too noisy to fail a build on) so comparable snapshots exit 0 —
but a snapshot the script cannot READ (malformed JSON, missing keys, an
unknown time unit) exits 2: a broken artifact is a pipeline bug, not noise.
"""

import argparse
import json
import sys

TIME_SCALE_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


class SnapshotError(Exception):
    """A snapshot file that cannot be interpreted (exit code 2)."""


def load_results(path):
    """Returns {(binary, name): real_time_ms}; raises SnapshotError."""
    try:
        with open(path) as f:
            snapshot = json.load(f)
    except OSError as e:
        raise SnapshotError(f"{path}: cannot read: {e}") from e
    except json.JSONDecodeError as e:
        raise SnapshotError(f"{path}: malformed JSON: {e}") from e
    if not isinstance(snapshot, dict) or not isinstance(snapshot.get("results"), dict):
        raise SnapshotError(f"{path}: no 'results' object — not a run_bench.sh snapshot")
    table = {}
    for binary, payload in snapshot["results"].items():
        benches = payload.get("benchmarks") if isinstance(payload, dict) else None
        if not isinstance(benches, list):
            raise SnapshotError(f"{path}: results[{binary!r}] has no 'benchmarks' list")
        for bench in benches:
            if bench.get("run_type", "iteration") != "iteration":
                continue
            unit = bench.get("time_unit", "ns")
            if unit not in TIME_SCALE_MS:
                raise SnapshotError(
                    f"{path}: unknown time_unit {unit!r} in results[{binary!r}]")
            if "name" not in bench or "real_time" not in bench:
                raise SnapshotError(
                    f"{path}: benchmark entry in results[{binary!r}] lacks "
                    "'name'/'real_time'")
            try:
                real_time = float(bench["real_time"])
            except (TypeError, ValueError) as e:
                raise SnapshotError(
                    f"{path}: non-numeric real_time for {bench['name']!r}") from e
            table[(binary, bench["name"])] = real_time * TIME_SCALE_MS[unit]
    return table


def fmt_ms(ms):
    if ms >= 1000:
        return f"{ms / 1000:.2f} s"
    if ms >= 1:
        return f"{ms:.2f} ms"
    return f"{ms * 1000:.1f} us"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--format", choices=("text", "md"), default="text")
    parser.add_argument("--threshold", type=float, default=1.10)
    args = parser.parse_args()

    try:
        old = load_results(args.old)
        new = load_results(args.new)
    except SnapshotError as e:
        print(f"compare_bench: error: {e}", file=sys.stderr)
        return 2
    common = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    rows = []
    speedups = regressions = 0
    for key in common:
        ratio = old[key] / new[key] if new[key] > 0 else float("inf")
        if ratio >= args.threshold:
            marker, verdict = "+", f"{ratio:.2f}x faster"
            speedups += 1
        elif ratio <= 1 / args.threshold:
            marker, verdict = "-", f"{1 / ratio:.2f}x SLOWER"
            regressions += 1
        else:
            marker, verdict = " ", "~"
        rows.append((marker, key, old[key], new[key], verdict))

    md = args.format == "md"
    if md:
        print(f"### Benchmark comparison: `{args.old}` → `{args.new}`")
        print()
        print("| benchmark | old | new | change |")
        print("| --- | ---: | ---: | --- |")
    else:
        print(f"benchmark comparison: {args.old} -> {args.new}")
    # One-sided legs ride in the same table: a benchmark that appeared or
    # vanished is at least as interesting as one that got slower.
    for key in only_new:
        rows.append(("+", key, None, new[key], "new"))
    for key in only_old:
        rows.append(("-", key, old[key], None, "gone"))

    for marker, (binary, name), old_ms, new_ms, verdict in rows:
        label = f"{binary}:{name}"
        old_s = fmt_ms(old_ms) if old_ms is not None else "—"
        new_s = fmt_ms(new_ms) if new_ms is not None else "—"
        if md:
            print(f"| `{label}` | {old_s} | {new_s} | {verdict} |")
        else:
            print(f" {marker} {label:<60} {old_s:>12} -> {new_s:>12}  {verdict}")
    summary = (
        f"{len(common)} compared: {speedups} faster, {regressions} slower, "
        f"{len(common) - speedups - regressions} within {args.threshold:.2f}x; "
        f"{len(only_new)} new, {len(only_old)} gone"
    )
    print()
    print(f"**{summary}**" if md else summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
