#!/usr/bin/env python3
"""Diffs two ictl benchmark snapshots (the BENCH_N.json files produced by
bench/run_bench.sh) and prints a per-benchmark speedup/regression table.

Usage:
    bench/compare_bench.py OLD.json NEW.json [--format=text|md] [--threshold=X]

Benchmarks are matched by (binary, benchmark name); entries present in only
one snapshot are listed separately.  `--threshold` (default 1.10) is the
ratio beyond which a change is flagged as a speedup/regression rather than
noise.  Exit status is always 0 — perf deltas inform, they do not gate
(hosted runners are too noisy to fail a build on).
"""

import argparse
import json
import sys


def load_results(path):
    """Returns {(binary, name): real_time_ms} plus the time units seen."""
    with open(path) as f:
        snapshot = json.load(f)
    table = {}
    for binary, payload in snapshot.get("results", {}).items():
        for bench in payload.get("benchmarks", []):
            if bench.get("run_type", "iteration") != "iteration":
                continue
            unit = bench.get("time_unit", "ns")
            scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
            table[(binary, bench["name"])] = bench["real_time"] * scale
    return table


def fmt_ms(ms):
    if ms >= 1000:
        return f"{ms / 1000:.2f} s"
    if ms >= 1:
        return f"{ms:.2f} ms"
    return f"{ms * 1000:.1f} us"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--format", choices=("text", "md"), default="text")
    parser.add_argument("--threshold", type=float, default=1.10)
    args = parser.parse_args()

    old = load_results(args.old)
    new = load_results(args.new)
    common = sorted(set(old) & set(new))
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    rows = []
    speedups = regressions = 0
    for key in common:
        ratio = old[key] / new[key] if new[key] > 0 else float("inf")
        if ratio >= args.threshold:
            marker, verdict = "+", f"{ratio:.2f}x faster"
            speedups += 1
        elif ratio <= 1 / args.threshold:
            marker, verdict = "-", f"{1 / ratio:.2f}x SLOWER"
            regressions += 1
        else:
            marker, verdict = " ", "~"
        rows.append((marker, key, old[key], new[key], verdict))

    md = args.format == "md"
    if md:
        print(f"### Benchmark comparison: `{args.old}` → `{args.new}`")
        print()
        print("| benchmark | old | new | change |")
        print("| --- | ---: | ---: | --- |")
    else:
        print(f"benchmark comparison: {args.old} -> {args.new}")
    for marker, (binary, name), old_ms, new_ms, verdict in rows:
        label = f"{binary}:{name}"
        if md:
            print(f"| `{label}` | {fmt_ms(old_ms)} | {fmt_ms(new_ms)} | {verdict} |")
        else:
            print(f" {marker} {label:<60} {fmt_ms(old_ms):>12} -> {fmt_ms(new_ms):>12}  {verdict}")
    summary = (
        f"{len(common)} compared: {speedups} faster, {regressions} slower, "
        f"{len(common) - speedups - regressions} within {args.threshold:.2f}x; "
        f"{len(only_new)} new, {len(only_old)} removed"
    )
    print()
    print(f"**{summary}**" if md else summary)
    if only_new:
        names = ", ".join(f"{b}:{n}" for b, n in only_new[:8])
        more = f" (+{len(only_new) - 8} more)" if len(only_new) > 8 else ""
        print(("new: " if not md else "\nNew benchmarks: ") + names + more)
    if only_old:
        names = ", ".join(f"{b}:{n}" for b, n in only_old[:8])
        more = f" (+{len(only_old) - 8} more)" if len(only_old) > 8 else ""
        print(("removed: " if not md else "\nRemoved benchmarks: ") + names + more)
    return 0


if __name__ == "__main__":
    sys.exit(main())
