// Benchmarks for the symbolic (BDD) engine: partitioned relation
// construction, rule-wise reachability, CTL fixpoints, and sifting-based
// reordering on rings at and far beyond the explicit engine's r = 24 cap —
// the numbers that justify the third engine.  The small sizes overlap
// BM_BuildRing / BM_CtlLabelingOnRing in bench_state_explosion.cpp and
// bench_mc_direct_vs_reduced.cpp for a direct explicit-vs-symbolic
// comparison.  Per-run counters surface the BddManager::Stats block:
// computed-cache hit rate, peak node count, sift passes/swaps.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "ictl.hpp"

namespace {

using namespace ictl;

// Reports the growth of an obs::Registry counter across the timed loop as a
// benchmark counter of the same name.  Counters record whenever the
// instrumentation is compiled in (no runtime arming needed); in an obs-off
// build the delta is 0 and the key simply reads as absent activity.
class RegistryDelta {
 public:
  RegistryDelta(const char* scope, const char* name)
      : scope_(scope),
        name_(name),
        start_(obs::Registry::global().value(scope, name)) {}
  void report(benchmark::State& state) const {
    state.counters[name_] = static_cast<double>(
        obs::Registry::global().value(scope_, name_) - start_);
  }

 private:
  const char* scope_;
  const char* name_;
  std::uint64_t start_;
};

void report_manager_counters(benchmark::State& state,
                             const symbolic::BddManager& mgr) {
  const auto& s = mgr.stats();
  state.counters["peak_nodes"] = static_cast<double>(s.peak_nodes);
  state.counters["live_nodes"] = static_cast<double>(mgr.live_nodes());
  const double lookups = static_cast<double>(s.cache_hits + s.cache_misses);
  state.counters["cache_hit_pct"] =
      lookups > 0 ? 100.0 * static_cast<double>(s.cache_hits) / lookups : 0.0;
  state.counters["cache_evictions"] = static_cast<double>(s.cache_evictions);
  state.counters["sift_passes"] = static_cast<double>(s.sift_passes);
  state.counters["sift_swaps"] = static_cast<double>(s.sift_swaps);
  state.counters["gc_runs"] = static_cast<double>(s.gc_runs);
  state.counters["gc_retired"] = static_cast<double>(s.gc_retired);
}

void BM_SymbolicBuildRing(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  std::size_t relation_nodes = 0;
  for (auto _ : state) {
    const auto ring = symbolic::build_symbolic_ring(r);
    relation_nodes = ring.system->relation_node_count();
    benchmark::DoNotOptimize(relation_nodes);
  }
  state.counters["relation_nodes"] = static_cast<double>(relation_nodes);
  state.SetComplexityN(r);
}
BENCHMARK(BM_SymbolicBuildRing)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Arg(48)
    ->Arg(64)
    ->Arg(96)
    ->Arg(128)
    ->Arg(192)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicReachable(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  std::shared_ptr<symbolic::TransitionSystem> last;
  const RegistryDelta sweeps("sym", "saturation_sweeps");
  const RegistryDelta posts("sym", "post_images");
  for (auto _ : state) {
    // Build + chained-saturation least fixpoint + count: the whole "how
    // many states" pipeline.
    const auto ring = symbolic::build_symbolic_ring(r);
    benchmark::DoNotOptimize(ring.system->num_reachable());
    last = ring.system;
  }
  if (last != nullptr) report_manager_counters(state, last->manager());
  sweeps.report(state);
  posts.report(state);
}
BENCHMARK(BM_SymbolicReachable)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48)
    ->Arg(64)
    ->Arg(96)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicReachable256(benchmark::State& state) {
  // The raised cap, measured separately so its multi-second runs don't
  // crowd the sweep above.
  for (auto _ : state) {
    const auto ring = symbolic::build_symbolic_ring(256);
    benchmark::DoNotOptimize(ring.system->num_reachable());
  }
}
BENCHMARK(BM_SymbolicReachable256)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SymbolicCheckCriticalImpliesToken(benchmark::State& state) {
  // P2 of Section 5, /\i AG(c_i -> t_i): an index-quantified AG checked by
  // symbolic fixpoint (the property the acceptance criteria pin at r = 32).
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto ring = symbolic::build_symbolic_ring(r);
  const auto f = ring::property_critical_implies_token();
  for (auto _ : state) {
    symbolic::CtlChecker checker(ring.system);
    benchmark::DoNotOptimize(checker.holds_initially(f));
  }
  report_manager_counters(state, ring.system->manager());
}
BENCHMARK(BM_SymbolicCheckCriticalImpliesToken)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicCheckOneToken(benchmark::State& state) {
  // I3, AG one(t), over the materialized theta function.
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto ring = symbolic::build_symbolic_ring(r);
  const auto f = ring::invariant_one_token();
  for (auto _ : state) {
    symbolic::CtlChecker checker(ring.system);
    benchmark::DoNotOptimize(checker.holds_initially(f));
  }
}
BENCHMARK(BM_SymbolicCheckOneToken)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicSectionFiveSuite(benchmark::State& state) {
  // All six Section 5 specifications on one symbolic instance, sharing one
  // checker (and so the hash-consed-formula memo) across the suite.
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto ring = symbolic::build_symbolic_ring(r);
  const auto specs = ring::section5_specifications();
  const RegistryDelta pres("sym", "pre_images");
  for (auto _ : state) {
    symbolic::CtlChecker checker(ring.system);
    for (const auto& [name, f] : specs)
      benchmark::DoNotOptimize(checker.holds_initially(f));
  }
  pres.report(state);
}
BENCHMARK(BM_SymbolicSectionFiveSuite)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicSiftScrambledRing(benchmark::State& state) {
  // Dynamic reordering at work: the ring built under a scrambled pair-block
  // order, reachability computed, then one full sifting pass.  The counters
  // report how much of the damage sifting undoes.
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t num_vars = 2 * (2 * r + 1);
  std::size_t live_before = 0, live_after = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Inline copy of testing::scrambled_pair_order (tests/helpers.hpp) —
    // bench binaries do not include the test tree.
    std::vector<std::uint32_t> order;
    std::uint64_t x = 0x9e3779b97f4a7c15ULL + r;
    std::vector<std::uint32_t> blocks(num_vars / 2);
    for (std::uint32_t b = 0; b < blocks.size(); ++b) blocks[b] = b;
    for (std::size_t i = blocks.size(); i > 1; --i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      std::swap(blocks[i - 1], blocks[x % i]);
    }
    for (const std::uint32_t b : blocks) {
      order.push_back(2 * b);
      order.push_back(2 * b + 1);
    }
    auto mgr = std::make_shared<symbolic::BddManager>(num_vars);
    mgr->set_initial_order(order);
    const auto ring = symbolic::build_symbolic_ring(r, mgr);
    benchmark::DoNotOptimize(ring.system->num_reachable());
    live_before = mgr->live_nodes();
    state.ResumeTiming();
    live_after = mgr->reorder_now();
    benchmark::DoNotOptimize(live_after);
  }
  state.counters["live_before"] = static_cast<double>(live_before);
  state.counters["live_after"] = static_cast<double>(live_after);
}
BENCHMARK(BM_SymbolicSiftScrambledRing)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicStoreSaveRing(benchmark::State& state) {
  // Serializing the partitioned relation + reachable fixpoint of M_r to the
  // versioned node store (bdd_store): the write half of "compute once,
  // reload forever".
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto ring = symbolic::build_symbolic_ring(r);
  benchmark::DoNotOptimize(ring.system->num_reachable());
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    symbolic::save_transition_system(*ring.system, out);
    bytes = out.str().size();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["blob_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SymbolicStoreSaveRing)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicStoreLoadRing(benchmark::State& state) {
  // Reloading the same blob into a fresh manager — the number to compare
  // against BM_SymbolicReachable at the same r: the loaded system adopts
  // the saved fixpoint, so num_states() returns without any saturation.
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto ring = symbolic::build_symbolic_ring(r);
  benchmark::DoNotOptimize(ring.system->num_reachable());
  std::ostringstream out;
  symbolic::save_transition_system(*ring.system, out);
  const std::string blob = out.str();
  for (auto _ : state) {
    std::istringstream in(blob);
    const auto loaded =
        symbolic::load_transition_system(in, ring.system->registry());
    benchmark::DoNotOptimize(loaded.num_states());
  }
  state.counters["blob_bytes"] = static_cast<double>(blob.size());
}
BENCHMARK(BM_SymbolicStoreLoadRing)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicReachableWithAutoGc(benchmark::State& state) {
  // The full reachability pipeline with mark-and-sweep armed: transient
  // frontier garbage is reclaimed as it dies instead of accumulating, at
  // the cost of the sweeps themselves — the gc_runs/live_nodes counters
  // tell the story against BM_SymbolicReachable.
  const auto r = static_cast<std::uint32_t>(state.range(0));
  std::shared_ptr<symbolic::TransitionSystem> last;
  for (auto _ : state) {
    auto mgr =
        std::make_shared<symbolic::BddManager>(2 * (2 * r + 1));
    mgr->enable_auto_gc(/*slack=*/1u << 12);
    const auto ring = symbolic::build_symbolic_ring(r, mgr);
    benchmark::DoNotOptimize(ring.system->num_reachable());
    last = ring.system;
  }
  if (last != nullptr) report_manager_counters(state, last->manager());
}
BENCHMARK(BM_SymbolicReachableWithAutoGc)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_FromStructureBridge(benchmark::State& state) {
  // Cost of lifting an explicit structure into the symbolic engine —
  // the differential tests' path.
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  for (auto _ : state) {
    const auto ts = symbolic::from_structure(sys.structure());
    benchmark::DoNotOptimize(ts.transitions());
  }
}
BENCHMARK(BM_FromStructureBridge)->Arg(6)->Arg(8)->Arg(10)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
