// Benchmarks for the symbolic (BDD) engine: relation construction,
// reachability, and CTL fixpoints on rings at and far beyond the explicit
// engine's r = 24 cap — the numbers that justify the third engine.  The
// small sizes overlap BM_BuildRing / BM_CtlLabelingOnRing in
// bench_state_explosion.cpp and bench_mc_direct_vs_reduced.cpp for a direct
// explicit-vs-symbolic comparison.
#include <benchmark/benchmark.h>

#include "ictl.hpp"

namespace {

using namespace ictl;

void BM_SymbolicBuildRing(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    const auto ring = symbolic::build_symbolic_ring(r);
    benchmark::DoNotOptimize(ring.system->transitions());
  }
  state.SetComplexityN(r);
}
BENCHMARK(BM_SymbolicBuildRing)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Arg(48)
    ->Arg(64)
    ->Arg(96)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicReachable(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    // Build + least fixpoint + count: the whole "how many states" pipeline.
    const auto ring = symbolic::build_symbolic_ring(r);
    benchmark::DoNotOptimize(ring.system->num_reachable());
  }
}
BENCHMARK(BM_SymbolicReachable)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicCheckCriticalImpliesToken(benchmark::State& state) {
  // P2 of Section 5, /\i AG(c_i -> t_i): an index-quantified AG checked by
  // symbolic fixpoint (the property the acceptance criteria pin at r = 32).
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto ring = symbolic::build_symbolic_ring(r);
  const auto f = ring::property_critical_implies_token();
  for (auto _ : state) {
    symbolic::CtlChecker checker(ring.system);
    benchmark::DoNotOptimize(checker.holds_initially(f));
  }
}
BENCHMARK(BM_SymbolicCheckCriticalImpliesToken)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicCheckOneToken(benchmark::State& state) {
  // I3, AG one(t), over the materialized theta function.
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto ring = symbolic::build_symbolic_ring(r);
  const auto f = ring::invariant_one_token();
  for (auto _ : state) {
    symbolic::CtlChecker checker(ring.system);
    benchmark::DoNotOptimize(checker.holds_initially(f));
  }
}
BENCHMARK(BM_SymbolicCheckOneToken)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicSectionFiveSuite(benchmark::State& state) {
  // All six Section 5 specifications on one symbolic instance, sharing one
  // checker (and so the hash-consed-formula memo) across the suite.
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto ring = symbolic::build_symbolic_ring(r);
  const auto specs = ring::section5_specifications();
  for (auto _ : state) {
    symbolic::CtlChecker checker(ring.system);
    for (const auto& [name, f] : specs)
      benchmark::DoNotOptimize(checker.holds_initially(f));
  }
}
BENCHMARK(BM_SymbolicSectionFiveSuite)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_FromStructureBridge(benchmark::State& state) {
  // Cost of lifting an explicit structure into the symbolic engine —
  // the differential tests' path.
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const auto sys = ring::RingSystem::build(r);
  for (auto _ : state) {
    const auto ts = symbolic::from_structure(sys.structure());
    benchmark::DoNotOptimize(ts.transitions());
  }
}
BENCHMARK(BM_FromStructureBridge)->Arg(6)->Arg(8)->Arg(10)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
